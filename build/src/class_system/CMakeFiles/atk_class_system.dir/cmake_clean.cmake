file(REMOVE_RECURSE
  "CMakeFiles/atk_class_system.dir/class_info.cc.o"
  "CMakeFiles/atk_class_system.dir/class_info.cc.o.d"
  "CMakeFiles/atk_class_system.dir/loader.cc.o"
  "CMakeFiles/atk_class_system.dir/loader.cc.o.d"
  "CMakeFiles/atk_class_system.dir/object.cc.o"
  "CMakeFiles/atk_class_system.dir/object.cc.o.d"
  "CMakeFiles/atk_class_system.dir/observable.cc.o"
  "CMakeFiles/atk_class_system.dir/observable.cc.o.d"
  "libatk_class_system.a"
  "libatk_class_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atk_class_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
