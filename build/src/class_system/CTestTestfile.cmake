# CMake generated Testfile for 
# Source directory: /root/repo/src/class_system
# Build directory: /root/repo/build/src/class_system
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
