file(REMOVE_RECURSE
  "CMakeFiles/atk_workload.dir/workload.cc.o"
  "CMakeFiles/atk_workload.dir/workload.cc.o.d"
  "libatk_workload.a"
  "libatk_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atk_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
