# Empty dependencies file for atk_workload.
# This may be replaced when dependencies are built.
