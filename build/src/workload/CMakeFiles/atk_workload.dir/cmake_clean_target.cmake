file(REMOVE_RECURSE
  "libatk_workload.a"
)
