# Empty compiler generated dependencies file for atk_apps.
# This may be replaced when dependencies are built.
