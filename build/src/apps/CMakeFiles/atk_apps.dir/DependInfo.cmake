
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/compile_package.cc" "src/apps/CMakeFiles/atk_apps.dir/compile_package.cc.o" "gcc" "src/apps/CMakeFiles/atk_apps.dir/compile_package.cc.o.d"
  "/root/repo/src/apps/console_app.cc" "src/apps/CMakeFiles/atk_apps.dir/console_app.cc.o" "gcc" "src/apps/CMakeFiles/atk_apps.dir/console_app.cc.o.d"
  "/root/repo/src/apps/ctext_package.cc" "src/apps/CMakeFiles/atk_apps.dir/ctext_package.cc.o" "gcc" "src/apps/CMakeFiles/atk_apps.dir/ctext_package.cc.o.d"
  "/root/repo/src/apps/ez_app.cc" "src/apps/CMakeFiles/atk_apps.dir/ez_app.cc.o" "gcc" "src/apps/CMakeFiles/atk_apps.dir/ez_app.cc.o.d"
  "/root/repo/src/apps/filter_package.cc" "src/apps/CMakeFiles/atk_apps.dir/filter_package.cc.o" "gcc" "src/apps/CMakeFiles/atk_apps.dir/filter_package.cc.o.d"
  "/root/repo/src/apps/help_app.cc" "src/apps/CMakeFiles/atk_apps.dir/help_app.cc.o" "gcc" "src/apps/CMakeFiles/atk_apps.dir/help_app.cc.o.d"
  "/root/repo/src/apps/mail_store.cc" "src/apps/CMakeFiles/atk_apps.dir/mail_store.cc.o" "gcc" "src/apps/CMakeFiles/atk_apps.dir/mail_store.cc.o.d"
  "/root/repo/src/apps/messages_app.cc" "src/apps/CMakeFiles/atk_apps.dir/messages_app.cc.o" "gcc" "src/apps/CMakeFiles/atk_apps.dir/messages_app.cc.o.d"
  "/root/repo/src/apps/preview_app.cc" "src/apps/CMakeFiles/atk_apps.dir/preview_app.cc.o" "gcc" "src/apps/CMakeFiles/atk_apps.dir/preview_app.cc.o.d"
  "/root/repo/src/apps/spell_package.cc" "src/apps/CMakeFiles/atk_apps.dir/spell_package.cc.o" "gcc" "src/apps/CMakeFiles/atk_apps.dir/spell_package.cc.o.d"
  "/root/repo/src/apps/standard_modules.cc" "src/apps/CMakeFiles/atk_apps.dir/standard_modules.cc.o" "gcc" "src/apps/CMakeFiles/atk_apps.dir/standard_modules.cc.o.d"
  "/root/repo/src/apps/style_editor.cc" "src/apps/CMakeFiles/atk_apps.dir/style_editor.cc.o" "gcc" "src/apps/CMakeFiles/atk_apps.dir/style_editor.cc.o.d"
  "/root/repo/src/apps/typescript_app.cc" "src/apps/CMakeFiles/atk_apps.dir/typescript_app.cc.o" "gcc" "src/apps/CMakeFiles/atk_apps.dir/typescript_app.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/components/text/CMakeFiles/atk_text.dir/DependInfo.cmake"
  "/root/repo/build/src/components/table/CMakeFiles/atk_table.dir/DependInfo.cmake"
  "/root/repo/build/src/components/drawing/CMakeFiles/atk_drawing.dir/DependInfo.cmake"
  "/root/repo/build/src/components/equation/CMakeFiles/atk_equation.dir/DependInfo.cmake"
  "/root/repo/build/src/components/raster/CMakeFiles/atk_raster.dir/DependInfo.cmake"
  "/root/repo/build/src/components/animation/CMakeFiles/atk_animation.dir/DependInfo.cmake"
  "/root/repo/build/src/components/scroll/CMakeFiles/atk_scroll.dir/DependInfo.cmake"
  "/root/repo/build/src/components/frame/CMakeFiles/atk_frame.dir/DependInfo.cmake"
  "/root/repo/build/src/components/widgets/CMakeFiles/atk_widgets.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/atk_base.dir/DependInfo.cmake"
  "/root/repo/build/src/wm/CMakeFiles/atk_wm.dir/DependInfo.cmake"
  "/root/repo/build/src/datastream/CMakeFiles/atk_datastream.dir/DependInfo.cmake"
  "/root/repo/build/src/graphics/CMakeFiles/atk_graphics.dir/DependInfo.cmake"
  "/root/repo/build/src/class_system/CMakeFiles/atk_class_system.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
