file(REMOVE_RECURSE
  "CMakeFiles/atk_apps.dir/compile_package.cc.o"
  "CMakeFiles/atk_apps.dir/compile_package.cc.o.d"
  "CMakeFiles/atk_apps.dir/console_app.cc.o"
  "CMakeFiles/atk_apps.dir/console_app.cc.o.d"
  "CMakeFiles/atk_apps.dir/ctext_package.cc.o"
  "CMakeFiles/atk_apps.dir/ctext_package.cc.o.d"
  "CMakeFiles/atk_apps.dir/ez_app.cc.o"
  "CMakeFiles/atk_apps.dir/ez_app.cc.o.d"
  "CMakeFiles/atk_apps.dir/filter_package.cc.o"
  "CMakeFiles/atk_apps.dir/filter_package.cc.o.d"
  "CMakeFiles/atk_apps.dir/help_app.cc.o"
  "CMakeFiles/atk_apps.dir/help_app.cc.o.d"
  "CMakeFiles/atk_apps.dir/mail_store.cc.o"
  "CMakeFiles/atk_apps.dir/mail_store.cc.o.d"
  "CMakeFiles/atk_apps.dir/messages_app.cc.o"
  "CMakeFiles/atk_apps.dir/messages_app.cc.o.d"
  "CMakeFiles/atk_apps.dir/preview_app.cc.o"
  "CMakeFiles/atk_apps.dir/preview_app.cc.o.d"
  "CMakeFiles/atk_apps.dir/spell_package.cc.o"
  "CMakeFiles/atk_apps.dir/spell_package.cc.o.d"
  "CMakeFiles/atk_apps.dir/standard_modules.cc.o"
  "CMakeFiles/atk_apps.dir/standard_modules.cc.o.d"
  "CMakeFiles/atk_apps.dir/style_editor.cc.o"
  "CMakeFiles/atk_apps.dir/style_editor.cc.o.d"
  "CMakeFiles/atk_apps.dir/typescript_app.cc.o"
  "CMakeFiles/atk_apps.dir/typescript_app.cc.o.d"
  "libatk_apps.a"
  "libatk_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atk_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
