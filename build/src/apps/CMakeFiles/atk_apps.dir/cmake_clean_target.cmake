file(REMOVE_RECURSE
  "libatk_apps.a"
)
