file(REMOVE_RECURSE
  "CMakeFiles/atk_table.dir/chart.cc.o"
  "CMakeFiles/atk_table.dir/chart.cc.o.d"
  "CMakeFiles/atk_table.dir/formula.cc.o"
  "CMakeFiles/atk_table.dir/formula.cc.o.d"
  "CMakeFiles/atk_table.dir/table_data.cc.o"
  "CMakeFiles/atk_table.dir/table_data.cc.o.d"
  "CMakeFiles/atk_table.dir/table_module.cc.o"
  "CMakeFiles/atk_table.dir/table_module.cc.o.d"
  "CMakeFiles/atk_table.dir/table_view.cc.o"
  "CMakeFiles/atk_table.dir/table_view.cc.o.d"
  "libatk_table.a"
  "libatk_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atk_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
