file(REMOVE_RECURSE
  "libatk_table.a"
)
