# Empty dependencies file for atk_table.
# This may be replaced when dependencies are built.
