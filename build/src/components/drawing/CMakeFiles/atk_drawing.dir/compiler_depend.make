# Empty compiler generated dependencies file for atk_drawing.
# This may be replaced when dependencies are built.
