file(REMOVE_RECURSE
  "libatk_drawing.a"
)
