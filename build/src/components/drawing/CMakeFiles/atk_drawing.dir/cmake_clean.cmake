file(REMOVE_RECURSE
  "CMakeFiles/atk_drawing.dir/draw_data.cc.o"
  "CMakeFiles/atk_drawing.dir/draw_data.cc.o.d"
  "CMakeFiles/atk_drawing.dir/draw_view.cc.o"
  "CMakeFiles/atk_drawing.dir/draw_view.cc.o.d"
  "libatk_drawing.a"
  "libatk_drawing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atk_drawing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
