file(REMOVE_RECURSE
  "CMakeFiles/atk_widgets.dir/menu_view.cc.o"
  "CMakeFiles/atk_widgets.dir/menu_view.cc.o.d"
  "CMakeFiles/atk_widgets.dir/widgets.cc.o"
  "CMakeFiles/atk_widgets.dir/widgets.cc.o.d"
  "libatk_widgets.a"
  "libatk_widgets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atk_widgets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
