file(REMOVE_RECURSE
  "libatk_widgets.a"
)
