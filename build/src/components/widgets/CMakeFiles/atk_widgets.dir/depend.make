# Empty dependencies file for atk_widgets.
# This may be replaced when dependencies are built.
