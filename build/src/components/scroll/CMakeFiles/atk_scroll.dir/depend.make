# Empty dependencies file for atk_scroll.
# This may be replaced when dependencies are built.
