file(REMOVE_RECURSE
  "CMakeFiles/atk_scroll.dir/scrollbar_view.cc.o"
  "CMakeFiles/atk_scroll.dir/scrollbar_view.cc.o.d"
  "libatk_scroll.a"
  "libatk_scroll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atk_scroll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
