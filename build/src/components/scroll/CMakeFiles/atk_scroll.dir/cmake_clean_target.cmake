file(REMOVE_RECURSE
  "libatk_scroll.a"
)
