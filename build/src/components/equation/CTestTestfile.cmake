# CMake generated Testfile for 
# Source directory: /root/repo/src/components/equation
# Build directory: /root/repo/build/src/components/equation
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
