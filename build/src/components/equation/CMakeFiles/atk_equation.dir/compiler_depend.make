# Empty compiler generated dependencies file for atk_equation.
# This may be replaced when dependencies are built.
