file(REMOVE_RECURSE
  "CMakeFiles/atk_equation.dir/eq_data.cc.o"
  "CMakeFiles/atk_equation.dir/eq_data.cc.o.d"
  "CMakeFiles/atk_equation.dir/eq_view.cc.o"
  "CMakeFiles/atk_equation.dir/eq_view.cc.o.d"
  "libatk_equation.a"
  "libatk_equation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atk_equation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
