file(REMOVE_RECURSE
  "libatk_equation.a"
)
