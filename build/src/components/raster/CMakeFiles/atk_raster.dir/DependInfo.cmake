
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/components/raster/raster_data.cc" "src/components/raster/CMakeFiles/atk_raster.dir/raster_data.cc.o" "gcc" "src/components/raster/CMakeFiles/atk_raster.dir/raster_data.cc.o.d"
  "/root/repo/src/components/raster/raster_view.cc" "src/components/raster/CMakeFiles/atk_raster.dir/raster_view.cc.o" "gcc" "src/components/raster/CMakeFiles/atk_raster.dir/raster_view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/atk_base.dir/DependInfo.cmake"
  "/root/repo/build/src/wm/CMakeFiles/atk_wm.dir/DependInfo.cmake"
  "/root/repo/build/src/datastream/CMakeFiles/atk_datastream.dir/DependInfo.cmake"
  "/root/repo/build/src/graphics/CMakeFiles/atk_graphics.dir/DependInfo.cmake"
  "/root/repo/build/src/class_system/CMakeFiles/atk_class_system.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
