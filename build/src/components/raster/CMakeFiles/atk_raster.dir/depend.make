# Empty dependencies file for atk_raster.
# This may be replaced when dependencies are built.
