file(REMOVE_RECURSE
  "libatk_raster.a"
)
