file(REMOVE_RECURSE
  "CMakeFiles/atk_raster.dir/raster_data.cc.o"
  "CMakeFiles/atk_raster.dir/raster_data.cc.o.d"
  "CMakeFiles/atk_raster.dir/raster_view.cc.o"
  "CMakeFiles/atk_raster.dir/raster_view.cc.o.d"
  "libatk_raster.a"
  "libatk_raster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atk_raster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
