file(REMOVE_RECURSE
  "libatk_animation.a"
)
