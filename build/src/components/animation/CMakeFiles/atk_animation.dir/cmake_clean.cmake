file(REMOVE_RECURSE
  "CMakeFiles/atk_animation.dir/anim_data.cc.o"
  "CMakeFiles/atk_animation.dir/anim_data.cc.o.d"
  "CMakeFiles/atk_animation.dir/anim_view.cc.o"
  "CMakeFiles/atk_animation.dir/anim_view.cc.o.d"
  "libatk_animation.a"
  "libatk_animation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atk_animation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
