# Empty dependencies file for atk_animation.
# This may be replaced when dependencies are built.
