file(REMOVE_RECURSE
  "libatk_frame.a"
)
