# Empty compiler generated dependencies file for atk_frame.
# This may be replaced when dependencies are built.
