file(REMOVE_RECURSE
  "CMakeFiles/atk_frame.dir/frame_view.cc.o"
  "CMakeFiles/atk_frame.dir/frame_view.cc.o.d"
  "libatk_frame.a"
  "libatk_frame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atk_frame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
