# Empty compiler generated dependencies file for atk_text.
# This may be replaced when dependencies are built.
