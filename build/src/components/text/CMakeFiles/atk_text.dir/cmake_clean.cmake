file(REMOVE_RECURSE
  "CMakeFiles/atk_text.dir/gap_buffer.cc.o"
  "CMakeFiles/atk_text.dir/gap_buffer.cc.o.d"
  "CMakeFiles/atk_text.dir/paged_text_view.cc.o"
  "CMakeFiles/atk_text.dir/paged_text_view.cc.o.d"
  "CMakeFiles/atk_text.dir/style.cc.o"
  "CMakeFiles/atk_text.dir/style.cc.o.d"
  "CMakeFiles/atk_text.dir/text_data.cc.o"
  "CMakeFiles/atk_text.dir/text_data.cc.o.d"
  "CMakeFiles/atk_text.dir/text_module.cc.o"
  "CMakeFiles/atk_text.dir/text_module.cc.o.d"
  "CMakeFiles/atk_text.dir/text_view.cc.o"
  "CMakeFiles/atk_text.dir/text_view.cc.o.d"
  "libatk_text.a"
  "libatk_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atk_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
