file(REMOVE_RECURSE
  "libatk_text.a"
)
