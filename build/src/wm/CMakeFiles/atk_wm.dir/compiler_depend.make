# Empty compiler generated dependencies file for atk_wm.
# This may be replaced when dependencies are built.
