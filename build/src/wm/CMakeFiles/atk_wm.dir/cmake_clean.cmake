file(REMOVE_RECURSE
  "CMakeFiles/atk_wm.dir/printer.cc.o"
  "CMakeFiles/atk_wm.dir/printer.cc.o.d"
  "CMakeFiles/atk_wm.dir/register.cc.o"
  "CMakeFiles/atk_wm.dir/register.cc.o.d"
  "CMakeFiles/atk_wm.dir/window_system.cc.o"
  "CMakeFiles/atk_wm.dir/window_system.cc.o.d"
  "CMakeFiles/atk_wm.dir/wm_itc.cc.o"
  "CMakeFiles/atk_wm.dir/wm_itc.cc.o.d"
  "CMakeFiles/atk_wm.dir/wm_x11sim.cc.o"
  "CMakeFiles/atk_wm.dir/wm_x11sim.cc.o.d"
  "libatk_wm.a"
  "libatk_wm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atk_wm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
