file(REMOVE_RECURSE
  "libatk_wm.a"
)
