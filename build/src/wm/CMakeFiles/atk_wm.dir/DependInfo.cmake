
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wm/printer.cc" "src/wm/CMakeFiles/atk_wm.dir/printer.cc.o" "gcc" "src/wm/CMakeFiles/atk_wm.dir/printer.cc.o.d"
  "/root/repo/src/wm/register.cc" "src/wm/CMakeFiles/atk_wm.dir/register.cc.o" "gcc" "src/wm/CMakeFiles/atk_wm.dir/register.cc.o.d"
  "/root/repo/src/wm/window_system.cc" "src/wm/CMakeFiles/atk_wm.dir/window_system.cc.o" "gcc" "src/wm/CMakeFiles/atk_wm.dir/window_system.cc.o.d"
  "/root/repo/src/wm/wm_itc.cc" "src/wm/CMakeFiles/atk_wm.dir/wm_itc.cc.o" "gcc" "src/wm/CMakeFiles/atk_wm.dir/wm_itc.cc.o.d"
  "/root/repo/src/wm/wm_x11sim.cc" "src/wm/CMakeFiles/atk_wm.dir/wm_x11sim.cc.o" "gcc" "src/wm/CMakeFiles/atk_wm.dir/wm_x11sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graphics/CMakeFiles/atk_graphics.dir/DependInfo.cmake"
  "/root/repo/build/src/class_system/CMakeFiles/atk_class_system.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
