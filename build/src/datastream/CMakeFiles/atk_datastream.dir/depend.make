# Empty dependencies file for atk_datastream.
# This may be replaced when dependencies are built.
