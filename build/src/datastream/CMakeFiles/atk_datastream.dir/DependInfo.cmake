
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datastream/reader.cc" "src/datastream/CMakeFiles/atk_datastream.dir/reader.cc.o" "gcc" "src/datastream/CMakeFiles/atk_datastream.dir/reader.cc.o.d"
  "/root/repo/src/datastream/writer.cc" "src/datastream/CMakeFiles/atk_datastream.dir/writer.cc.o" "gcc" "src/datastream/CMakeFiles/atk_datastream.dir/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/class_system/CMakeFiles/atk_class_system.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
