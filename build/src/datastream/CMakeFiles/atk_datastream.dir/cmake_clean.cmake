file(REMOVE_RECURSE
  "CMakeFiles/atk_datastream.dir/reader.cc.o"
  "CMakeFiles/atk_datastream.dir/reader.cc.o.d"
  "CMakeFiles/atk_datastream.dir/writer.cc.o"
  "CMakeFiles/atk_datastream.dir/writer.cc.o.d"
  "libatk_datastream.a"
  "libatk_datastream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atk_datastream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
