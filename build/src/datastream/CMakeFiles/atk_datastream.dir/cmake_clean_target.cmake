file(REMOVE_RECURSE
  "libatk_datastream.a"
)
