file(REMOVE_RECURSE
  "CMakeFiles/atk_base.dir/application.cc.o"
  "CMakeFiles/atk_base.dir/application.cc.o.d"
  "CMakeFiles/atk_base.dir/data_object.cc.o"
  "CMakeFiles/atk_base.dir/data_object.cc.o.d"
  "CMakeFiles/atk_base.dir/default_views.cc.o"
  "CMakeFiles/atk_base.dir/default_views.cc.o.d"
  "CMakeFiles/atk_base.dir/interaction_manager.cc.o"
  "CMakeFiles/atk_base.dir/interaction_manager.cc.o.d"
  "CMakeFiles/atk_base.dir/keymap.cc.o"
  "CMakeFiles/atk_base.dir/keymap.cc.o.d"
  "CMakeFiles/atk_base.dir/menu_popup.cc.o"
  "CMakeFiles/atk_base.dir/menu_popup.cc.o.d"
  "CMakeFiles/atk_base.dir/menus.cc.o"
  "CMakeFiles/atk_base.dir/menus.cc.o.d"
  "CMakeFiles/atk_base.dir/print.cc.o"
  "CMakeFiles/atk_base.dir/print.cc.o.d"
  "CMakeFiles/atk_base.dir/proctable.cc.o"
  "CMakeFiles/atk_base.dir/proctable.cc.o.d"
  "CMakeFiles/atk_base.dir/view.cc.o"
  "CMakeFiles/atk_base.dir/view.cc.o.d"
  "libatk_base.a"
  "libatk_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atk_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
