# Empty dependencies file for atk_base.
# This may be replaced when dependencies are built.
