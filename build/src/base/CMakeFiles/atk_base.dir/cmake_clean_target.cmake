file(REMOVE_RECURSE
  "libatk_base.a"
)
