
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/application.cc" "src/base/CMakeFiles/atk_base.dir/application.cc.o" "gcc" "src/base/CMakeFiles/atk_base.dir/application.cc.o.d"
  "/root/repo/src/base/data_object.cc" "src/base/CMakeFiles/atk_base.dir/data_object.cc.o" "gcc" "src/base/CMakeFiles/atk_base.dir/data_object.cc.o.d"
  "/root/repo/src/base/default_views.cc" "src/base/CMakeFiles/atk_base.dir/default_views.cc.o" "gcc" "src/base/CMakeFiles/atk_base.dir/default_views.cc.o.d"
  "/root/repo/src/base/interaction_manager.cc" "src/base/CMakeFiles/atk_base.dir/interaction_manager.cc.o" "gcc" "src/base/CMakeFiles/atk_base.dir/interaction_manager.cc.o.d"
  "/root/repo/src/base/keymap.cc" "src/base/CMakeFiles/atk_base.dir/keymap.cc.o" "gcc" "src/base/CMakeFiles/atk_base.dir/keymap.cc.o.d"
  "/root/repo/src/base/menu_popup.cc" "src/base/CMakeFiles/atk_base.dir/menu_popup.cc.o" "gcc" "src/base/CMakeFiles/atk_base.dir/menu_popup.cc.o.d"
  "/root/repo/src/base/menus.cc" "src/base/CMakeFiles/atk_base.dir/menus.cc.o" "gcc" "src/base/CMakeFiles/atk_base.dir/menus.cc.o.d"
  "/root/repo/src/base/print.cc" "src/base/CMakeFiles/atk_base.dir/print.cc.o" "gcc" "src/base/CMakeFiles/atk_base.dir/print.cc.o.d"
  "/root/repo/src/base/proctable.cc" "src/base/CMakeFiles/atk_base.dir/proctable.cc.o" "gcc" "src/base/CMakeFiles/atk_base.dir/proctable.cc.o.d"
  "/root/repo/src/base/view.cc" "src/base/CMakeFiles/atk_base.dir/view.cc.o" "gcc" "src/base/CMakeFiles/atk_base.dir/view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wm/CMakeFiles/atk_wm.dir/DependInfo.cmake"
  "/root/repo/build/src/datastream/CMakeFiles/atk_datastream.dir/DependInfo.cmake"
  "/root/repo/build/src/graphics/CMakeFiles/atk_graphics.dir/DependInfo.cmake"
  "/root/repo/build/src/class_system/CMakeFiles/atk_class_system.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
