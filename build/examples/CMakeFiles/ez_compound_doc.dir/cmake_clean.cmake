file(REMOVE_RECURSE
  "CMakeFiles/ez_compound_doc.dir/ez_compound_doc.cpp.o"
  "CMakeFiles/ez_compound_doc.dir/ez_compound_doc.cpp.o.d"
  "ez_compound_doc"
  "ez_compound_doc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ez_compound_doc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
