# Empty compiler generated dependencies file for ez_compound_doc.
# This may be replaced when dependencies are built.
