file(REMOVE_RECURSE
  "CMakeFiles/mail_session.dir/mail_session.cpp.o"
  "CMakeFiles/mail_session.dir/mail_session.cpp.o.d"
  "mail_session"
  "mail_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mail_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
