# Empty compiler generated dependencies file for mail_session.
# This may be replaced when dependencies are built.
