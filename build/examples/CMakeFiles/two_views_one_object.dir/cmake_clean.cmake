file(REMOVE_RECURSE
  "CMakeFiles/two_views_one_object.dir/two_views_one_object.cpp.o"
  "CMakeFiles/two_views_one_object.dir/two_views_one_object.cpp.o.d"
  "two_views_one_object"
  "two_views_one_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_views_one_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
