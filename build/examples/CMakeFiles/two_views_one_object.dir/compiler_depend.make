# Empty compiler generated dependencies file for two_views_one_object.
# This may be replaced when dependencies are built.
