# Empty compiler generated dependencies file for help_and_typescript.
# This may be replaced when dependencies are built.
