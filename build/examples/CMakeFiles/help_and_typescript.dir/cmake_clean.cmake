file(REMOVE_RECURSE
  "CMakeFiles/help_and_typescript.dir/help_and_typescript.cpp.o"
  "CMakeFiles/help_and_typescript.dir/help_and_typescript.cpp.o.d"
  "help_and_typescript"
  "help_and_typescript.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/help_and_typescript.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
