# Empty dependencies file for extension_packages.
# This may be replaced when dependencies are built.
