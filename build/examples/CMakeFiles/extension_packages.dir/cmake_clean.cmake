file(REMOVE_RECURSE
  "CMakeFiles/extension_packages.dir/extension_packages.cpp.o"
  "CMakeFiles/extension_packages.dir/extension_packages.cpp.o.d"
  "extension_packages"
  "extension_packages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_packages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
