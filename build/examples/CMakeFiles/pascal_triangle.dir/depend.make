# Empty dependencies file for pascal_triangle.
# This may be replaced when dependencies are built.
