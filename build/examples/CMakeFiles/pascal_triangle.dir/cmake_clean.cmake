file(REMOVE_RECURSE
  "CMakeFiles/pascal_triangle.dir/pascal_triangle.cpp.o"
  "CMakeFiles/pascal_triangle.dir/pascal_triangle.cpp.o.d"
  "pascal_triangle"
  "pascal_triangle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pascal_triangle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
