file(REMOVE_RECURSE
  "CMakeFiles/test_extension.dir/test_extension.cc.o"
  "CMakeFiles/test_extension.dir/test_extension.cc.o.d"
  "test_extension"
  "test_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
