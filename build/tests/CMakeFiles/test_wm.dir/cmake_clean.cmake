file(REMOVE_RECURSE
  "CMakeFiles/test_wm.dir/test_wm.cc.o"
  "CMakeFiles/test_wm.dir/test_wm.cc.o.d"
  "test_wm"
  "test_wm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
