file(REMOVE_RECURSE
  "CMakeFiles/test_class_system.dir/test_class_system.cc.o"
  "CMakeFiles/test_class_system.dir/test_class_system.cc.o.d"
  "test_class_system"
  "test_class_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_class_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
