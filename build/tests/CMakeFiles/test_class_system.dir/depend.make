# Empty dependencies file for test_class_system.
# This may be replaced when dependencies are built.
