# Empty dependencies file for test_graphics.
# This may be replaced when dependencies are built.
