file(REMOVE_RECURSE
  "CMakeFiles/test_graphics.dir/test_graphics.cc.o"
  "CMakeFiles/test_graphics.dir/test_graphics.cc.o.d"
  "test_graphics"
  "test_graphics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graphics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
