file(REMOVE_RECURSE
  "CMakeFiles/test_chrome.dir/test_chrome.cc.o"
  "CMakeFiles/test_chrome.dir/test_chrome.cc.o.d"
  "test_chrome"
  "test_chrome.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chrome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
