# Empty compiler generated dependencies file for test_chrome.
# This may be replaced when dependencies are built.
