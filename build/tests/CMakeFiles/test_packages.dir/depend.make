# Empty dependencies file for test_packages.
# This may be replaced when dependencies are built.
