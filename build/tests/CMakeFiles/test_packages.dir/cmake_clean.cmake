file(REMOVE_RECURSE
  "CMakeFiles/test_packages.dir/test_packages.cc.o"
  "CMakeFiles/test_packages.dir/test_packages.cc.o.d"
  "test_packages"
  "test_packages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
