# Empty compiler generated dependencies file for test_datastream.
# This may be replaced when dependencies are built.
