file(REMOVE_RECURSE
  "CMakeFiles/test_datastream.dir/test_datastream.cc.o"
  "CMakeFiles/test_datastream.dir/test_datastream.cc.o.d"
  "test_datastream"
  "test_datastream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datastream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
