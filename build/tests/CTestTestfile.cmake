# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_class_system "/root/repo/build/tests/test_class_system")
set_tests_properties(test_class_system PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;8;atk_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_graphics "/root/repo/build/tests/test_graphics")
set_tests_properties(test_graphics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;9;atk_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_datastream "/root/repo/build/tests/test_datastream")
set_tests_properties(test_datastream PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;10;atk_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_wm "/root/repo/build/tests/test_wm")
set_tests_properties(test_wm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;11;atk_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_base "/root/repo/build/tests/test_base")
set_tests_properties(test_base PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;12;atk_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_text "/root/repo/build/tests/test_text")
set_tests_properties(test_text PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;13;atk_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_table "/root/repo/build/tests/test_table")
set_tests_properties(test_table PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;14;atk_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_components "/root/repo/build/tests/test_components")
set_tests_properties(test_components PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;15;atk_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_apps "/root/repo/build/tests/test_apps")
set_tests_properties(test_apps PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;16;atk_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;17;atk_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;18;atk_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_extension "/root/repo/build/tests/test_extension")
set_tests_properties(test_extension PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;19;atk_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_packages "/root/repo/build/tests/test_packages")
set_tests_properties(test_packages PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;20;atk_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_chrome "/root/repo/build/tests/test_chrome")
set_tests_properties(test_chrome PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;21;atk_test;/root/repo/tests/CMakeLists.txt;0;")
