// Salvage throughput on corrupted workload documents, reported alongside the
// bench_datastream numbers: the recovery pass must stay within a small factor
// of a plain parse or it is useless as a load-time fallback.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "src/apps/standard_modules.h"
#include "src/robustness/fault_injector.h"
#include "src/robustness/salvage.h"
#include "src/workload/corruption.h"

namespace atk {
namespace {

void Setup() {
  static bool done = [] {
    RegisterStandardModules();
    return true;
  }();
  (void)done;
}

// Baseline: salvaging an undamaged stream (pure scan, byte-exact passthrough).
void BM_SalvageCleanStream(benchmark::State& state) {
  Setup();
  std::string doc = GenerateSerializedDocument(static_cast<uint64_t>(state.range(0)));
  DataStreamSalvager salvager;
  for (auto _ : state) {
    SalvageReport report;
    std::string out = salvager.Salvage(doc, &report);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(doc.size()));
  state.counters["doc_bytes"] = static_cast<double>(doc.size());
}
BENCHMARK(BM_SalvageCleanStream)->Arg(7)->Arg(1988);

// Salvage of a corrupted stream, swept by how many faults the plan injects.
void BM_SalvageCorruptedByFaults(benchmark::State& state) {
  Setup();
  std::string doc = GenerateSerializedDocument(11);
  FaultPlan plan = FaultPlan::FromSeed(11, doc.size(), static_cast<int>(state.range(0)));
  FaultInjector injector(plan);
  std::string corrupted = injector.Corrupt(doc);
  DataStreamSalvager salvager;
  int quarantined = 0;
  for (auto _ : state) {
    SalvageReport report;
    std::string out = salvager.Salvage(corrupted, &report);
    quarantined = report.subtrees_quarantined;
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(corrupted.size()));
  state.counters["faults"] = static_cast<double>(state.range(0));
  state.counters["quarantined"] = static_cast<double>(quarantined);
}
BENCHMARK(BM_SalvageCorruptedByFaults)->Arg(1)->Arg(3)->Arg(8)->Arg(16);

// The end-to-end pipeline a recovering editor runs at load time:
// corrupt -> salvage -> re-read -> re-save, one seed per iteration.
void BM_FullCorruptionScenario(benchmark::State& state) {
  Setup();
  uint64_t seed = 1;
  for (auto _ : state) {
    CorruptionScenario scenario = RunCorruptionScenario(seed++);
    benchmark::DoNotOptimize(scenario.resaved);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullCorruptionScenario);

}  // namespace
}  // namespace atk

ATK_BENCH_MAIN("bench_salvage");
