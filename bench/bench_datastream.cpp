// E2 — §5's external representation: write/read throughput, nesting-depth
// sweeps, and the headline structural property — finding an object's extent
// by bracket matching (SkipObject) versus fully parsing it.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include <sstream>

#include "src/apps/standard_modules.h"
#include "src/base/data_object.h"
#include "src/class_system/loader.h"
#include "src/components/text/gap_buffer.h"
#include "src/datastream/baseline_reader.h"
#include "src/observability/memory.h"
#include "src/workload/workload.h"

namespace atk {
namespace {

void Setup() {
  static bool done = [] {
    RegisterStandardModules();
    Loader::Instance().Require("text");
    Loader::Instance().Require("table");
    Loader::Instance().Require("drawing");
    Loader::Instance().Require("equation");
    Loader::Instance().Require("raster");
    return true;
  }();
  (void)done;
}

std::string MakeDocument(int paragraphs, int nesting) {
  WorkloadRng rng(1988);
  CompoundDocumentSpec spec;
  spec.paragraphs = paragraphs;
  spec.nesting_depth = nesting;
  spec.tables = 1;
  spec.drawings = 1;
  spec.equations = 1;
  spec.rasters = 1;
  std::unique_ptr<TextData> doc = GenerateCompoundDocument(rng, spec);
  return WriteDocument(*doc);
}

void BM_WriteDocumentBySize(benchmark::State& state) {
  Setup();
  WorkloadRng rng(7);
  std::unique_ptr<TextData> doc = GenerateDocument(rng, static_cast<int>(state.range(0)));
  int64_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream out;
    DataStreamWriter writer(out);
    doc->Write(writer);
    bytes = writer.bytes_written();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * bytes);
  state.counters["doc_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_WriteDocumentBySize)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_ReadDocumentBySize(benchmark::State& state) {
  Setup();
  WorkloadRng rng(7);
  std::unique_ptr<TextData> doc = GenerateDocument(rng, static_cast<int>(state.range(0)));
  std::string serialized = WriteDocument(*doc);
  for (auto _ : state) {
    ReadContext ctx;
    std::unique_ptr<DataObject> read = ReadDocument(serialized, &ctx);
    benchmark::DoNotOptimize(read);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(serialized.size()));
  // Bytes-per-document gate (check_perf.sh): peak accounted bytes one decode
  // of the 256-paragraph corpus adds on top of whatever is already live.
  if (state.range(0) == 256) {
    using atk::observability::MemoryAccountant;
    MemoryAccountant& accountant = MemoryAccountant::Instance();
    accountant.ResetPeaks();
    int64_t before = accountant.total();
    {
      ReadContext ctx;
      std::unique_ptr<DataObject> read = ReadDocument(serialized, &ctx);
      benchmark::DoNotOptimize(read);
    }
    static atk::observability::Gauge& doc_peak =
        atk::observability::MetricsRegistry::Instance().gauge(
            "datastream.bench.doc_peak_bytes");
    doc_peak.Set(accountant.peak() - before);
  }
}
BENCHMARK(BM_ReadDocumentBySize)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// The identical loop with the accountant switched off: check_perf.sh holds
// the accounted run within 2% of this one (same process, same corpus), the
// instrumentation's whole-path overhead budget.  Everything this loop
// charges/releases happens inside the disabled window, so the gauges stay
// exact when accounting resumes.
void BM_ReadDocumentBySize_Unaccounted(benchmark::State& state) {
  Setup();
  WorkloadRng rng(7);
  std::unique_ptr<TextData> doc = GenerateDocument(rng, static_cast<int>(state.range(0)));
  std::string serialized = WriteDocument(*doc);
  atk::observability::SetMemoryAccountingEnabled(false);
  for (auto _ : state) {
    ReadContext ctx;
    std::unique_ptr<DataObject> read = ReadDocument(serialized, &ctx);
    benchmark::DoNotOptimize(read);
  }
  atk::observability::SetMemoryAccountingEnabled(true);
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(serialized.size()));
}
BENCHMARK(BM_ReadDocumentBySize_Unaccounted)->Arg(256);

// The pre-PR-5 copying ingestion path, kept in-tree (baseline_reader.h) the
// way PR 3 kept the flat-rect region algorithm: the old lexer accumulates
// every text token into an owning std::string byte by byte, and the document
// body lands in the gap buffer one fragment at a time.  check_perf.sh pins
// BM_ReadDocumentBySize/256 at >= 3x the throughput of this baseline.
void BM_ReadDocumentBySize_Baseline(benchmark::State& state) {
  Setup();
  WorkloadRng rng(7);
  std::unique_ptr<TextData> doc = GenerateDocument(rng, static_cast<int>(state.range(0)));
  std::string serialized = WriteDocument(*doc);
  using Kind = BaselineDataStreamReader::Token::Kind;
  for (auto _ : state) {
    BaselineDataStreamReader reader(serialized);
    GapBuffer buffer;
    int64_t newlines = 0;
    while (true) {
      BaselineDataStreamReader::Token token = reader.Next();
      if (token.kind == Kind::kEof) {
        break;
      }
      if (token.kind == Kind::kText) {
        buffer.Insert(buffer.size(), token.text);
        for (char ch : token.text) {
          newlines += ch == '\n' ? 1 : 0;
        }
      }
    }
    benchmark::DoNotOptimize(buffer);
    benchmark::DoNotOptimize(newlines);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(serialized.size()));
}
BENCHMARK(BM_ReadDocumentBySize_Baseline)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// The same read with the worker pool on: embedded objects decode in
// parallel.  GenerateCompoundDocument gives the root several children.
void BM_ReadCompoundParallel(benchmark::State& state) {
  Setup();
  std::string serialized = MakeDocument(64, 2);
  for (auto _ : state) {
    ReadContext ctx;
    ctx.EnableDeferredDecode(static_cast<int>(state.range(0)));
    std::unique_ptr<DataObject> read = ReadDocument(serialized, &ctx);
    benchmark::DoNotOptimize(read);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(serialized.size()));
}
BENCHMARK(BM_ReadCompoundParallel)->Arg(1)->Arg(4)->Arg(8);

void BM_RoundTripCompoundByNesting(benchmark::State& state) {
  Setup();
  std::string serialized = MakeDocument(4, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ReadContext ctx;
    std::unique_ptr<DataObject> read = ReadDocument(serialized, &ctx);
    std::string rewritten = WriteDocument(*read);
    benchmark::DoNotOptimize(rewritten);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(serialized.size()));
  state.counters["nesting"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RoundTripCompoundByNesting)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// The §5 property: skipping an unknown object needs no component code and
// no content parsing.  Compare against a full parse of the same bytes.
void BM_SkipObjectVsFullParse_Skip(benchmark::State& state) {
  Setup();
  std::string serialized = MakeDocument(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    DataStreamReader reader(serialized);
    DataStreamReader::Token token = reader.Next();
    std::string_view raw;
    reader.SkipObject(token.type, token.id, &raw);
    benchmark::DoNotOptimize(raw);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(serialized.size()));
}
BENCHMARK(BM_SkipObjectVsFullParse_Skip)->Arg(16)->Arg(64)->Arg(256);

void BM_SkipObjectVsFullParse_Parse(benchmark::State& state) {
  Setup();
  std::string serialized = MakeDocument(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    ReadContext ctx;
    std::unique_ptr<DataObject> read = ReadDocument(serialized, &ctx);
    benchmark::DoNotOptimize(read);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(serialized.size()));
}
BENCHMARK(BM_SkipObjectVsFullParse_Parse)->Arg(16)->Arg(64)->Arg(256);

// Escaping overhead: text heavy in backslashes/high bytes vs plain prose.
void BM_EscapingPlainProse(benchmark::State& state) {
  Setup();
  WorkloadRng rng(3);
  std::string prose = GenerateProse(rng, 2000);
  for (auto _ : state) {
    std::ostringstream out;
    DataStreamWriter writer(out);
    writer.WriteText(prose);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(prose.size()));
}
BENCHMARK(BM_EscapingPlainProse);

void BM_EscapingHostileBytes(benchmark::State& state) {
  Setup();
  std::string hostile;
  for (int i = 0; i < 8000; ++i) {
    hostile += static_cast<char>(i % 7 == 0 ? '\\' : (i % 11 == 0 ? 0xE9 : 'a' + i % 26));
  }
  for (auto _ : state) {
    std::ostringstream out;
    DataStreamWriter writer(out);
    writer.WriteText(hostile);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(hostile.size()));
}
BENCHMARK(BM_EscapingHostileBytes);

// Truncation recovery: parse documents chopped at every quartile.
void BM_TruncatedDocumentRecovery(benchmark::State& state) {
  Setup();
  std::string serialized = MakeDocument(32, 2);
  for (auto _ : state) {
    for (int quartile = 1; quartile <= 3; ++quartile) {
      std::string chopped = serialized.substr(0, serialized.size() * quartile / 4);
      ReadContext ctx;
      std::unique_ptr<DataObject> read = ReadDocument(std::move(chopped), &ctx);
      benchmark::DoNotOptimize(read);
    }
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_TruncatedDocumentRecovery);

}  // namespace
}  // namespace atk

ATK_BENCH_MAIN("bench_datastream");
