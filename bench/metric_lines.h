// Machine-readable metric lines shared by every bench binary.
//
// Benchmark-free on purpose: tests include this header to validate the
// exact JSON the benches emit (tests/test_scenarios.cc parses every line
// with the strict parser in tests/test_json.h), so the emitter cannot drift
// from what the suite pins without a test failing.  bench_json.h layers the
// google-benchmark reporter and ATK_BENCH_MAIN on top.
//
// Line shape (one self-delimiting object per line, always starting with
// {"bench":, so the lines survive interleaving with the console table):
//
//   {"bench":"bench_update","metric":"counter/im.update.run","value":51,
//    "unit":"count","iterations":1}

#ifndef ATK_BENCH_METRIC_LINES_H_
#define ATK_BENCH_METRIC_LINES_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/observability/observability.h"

namespace atk_bench {

// Peak resident set (VmHWM) in bytes from /proc/self/status, or 0 when the
// platform has no procfs.  This is the external oracle the accountant's
// internal byte gauges are judged against: run_all.sh records it per bench
// binary so BENCH_RESULTS.json carries both views of the same memory.
inline double ReadVmHwmBytes() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) {
    return 0.0;
  }
  double bytes = 0.0;
  char line[256];
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      bytes = std::strtod(line + 6, nullptr) * 1024.0;  // Reported in kB.
      break;
    }
  }
  std::fclose(status);
  return bytes;
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    unsigned char byte = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (byte < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", byte);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

// One metric line in the canonical shape, written to `out`.
inline void FormatMetricLine(std::string* out, const std::string& bench,
                             const std::string& metric, double value,
                             const char* unit) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"bench\":\"%s\",\"metric\":\"%s\",\"value\":%.6g,"
                "\"unit\":\"%s\",\"iterations\":1}",
                JsonEscape(bench).c_str(), JsonEscape(metric).c_str(), value, unit);
  *out = buf;
}

// Renders the end-of-run observability snapshot as JSON lines: every
// nonzero counter, every gauge, and p50/p95/p99 (+ count) per populated
// histogram.  Zero counters are skipped — they are registrations the
// workload never hit.  Returned as one string (newline-terminated lines) so
// tests can inspect exactly what a bench binary would print.
inline std::string RenderMetricsSnapshot(const std::string& bench) {
  std::string lines;
  std::string line;
  auto emit = [&](const std::string& metric, double value, const char* unit) {
    FormatMetricLine(&line, bench, metric, value, unit);
    lines += line;
    lines += '\n';
  };
  atk::observability::TraceSnapshot snap = atk::observability::Snapshot();
  // Tracer accounting goes out unconditionally, so every binary contributes
  // a snapshot (run_all.sh treats a silent one as a failure) and ring
  // overwrites are visible per bench, not just in-process.
  emit("counter/obs.spans.recorded", static_cast<double>(snap.spans_recorded), "count");
  emit("counter/obs.spans.dropped", static_cast<double>(snap.spans_dropped), "count");
  // The process high-water mark rides along with the registry gauges: the
  // one number the kernel keeps that the accountant cannot fake.
  double vmhwm = ReadVmHwmBytes();
  if (vmhwm > 0) {
    emit("gauge/proc.mem.vmhwm_bytes", vmhwm, "value");
  }
  for (const atk::observability::CounterSample& counter : snap.counters) {
    if (counter.value != 0) {
      emit("counter/" + counter.name, static_cast<double>(counter.value), "count");
    }
  }
  for (const atk::observability::GaugeSample& gauge : snap.gauges) {
    emit("gauge/" + gauge.name, static_cast<double>(gauge.value), "value");
  }
  for (const atk::observability::HistogramSample& histo : snap.histograms) {
    if (histo.count == 0) {
      continue;
    }
    emit("histogram/" + histo.name + "/count", static_cast<double>(histo.count), "count");
    emit("histogram/" + histo.name + "/p50", static_cast<double>(histo.p50), "value");
    emit("histogram/" + histo.name + "/p95", static_cast<double>(histo.p95), "value");
    emit("histogram/" + histo.name + "/p99", static_cast<double>(histo.p99), "value");
  }
  return lines;
}

// Prints the snapshot on stdout (what ATK_BENCH_MAIN does after the runs).
inline void EmitMetricsSnapshot(const std::string& bench) {
  std::fputs(RenderMetricsSnapshot(bench).c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace atk_bench

#endif  // ATK_BENCH_METRIC_LINES_H_
