// The compound-document server under load: attach throughput and edit
// fan-out latency with hundreds of concurrent sessions over the framed
// transport (DESIGN.md §9).  Everything runs in-process on the simulated
// link, so the numbers measure the protocol machinery — framing, CRCs,
// go-back-N bookkeeping, observer fan-out — not kernel sockets.
//
// Beyond the wall-time rows, the observability snapshot contributes:
//   histogram/server.fanout.latency_us/p99       — server-side fan-out loop
//   histogram/client.update.lag_ticks/p99        — replica-observed update lag
//   histogram/server.propagation.latency_us/p99  — origin -> last replica,
//                                                  traced runs only
//   gauge/server.bench.attach_sessions_per_sec
//   gauge/server.bench.fanout_p99_us             — end-to-end per-edit p99
//   gauge/server.bench.fanout_traced_p99_us      — same loop with tracing on
// which is where the acceptance numbers live.  BM_EditFanOut_Traced runs the
// identical workload with span recording and flow ids enabled, so the
// traced/untraced ratio is the tracing overhead check_perf.sh gates on.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "src/components/text/text_data.h"
#include "src/observability/memory.h"
#include "src/server/client_session.h"
#include "src/server/document_server.h"
#include "src/server/transport_sim.h"

namespace atk {
namespace server {
namespace {

using observability::MetricsRegistry;

struct Fleet {
  DocumentServer server;
  std::vector<std::unique_ptr<SimulatedLink>> links;
  std::vector<std::unique_ptr<ClientSession>> clients;

  explicit Fleet(int sessions) {
    auto doc = std::make_unique<TextData>();
    doc->SetText("the andrew toolkit document server benchmark corpus line\n");
    server.HostDocument("bench", std::move(doc));
    links.reserve(sessions);
    clients.reserve(sessions);
    for (int i = 0; i < sessions; ++i) {
      links.push_back(
          std::make_unique<SimulatedLink>(TransportFaultPlan::Clean()));
      server.AttachLink(links.back().get());
      clients.push_back(std::make_unique<ClientSession>(
          "bench-client-" + std::to_string(i), "bench", links.back().get()));
    }
  }

  void Step() {
    for (size_t i = 0; i < clients.size(); ++i) {
      clients[i]->Pump(links[i]->now());
    }
    server.PumpOnce();
    for (auto& link : links) {
      link->Tick();
    }
  }

  bool AllSynced() const {
    for (const auto& client : clients) {
      if (!client->synced()) {
        return false;
      }
    }
    return true;
  }

  bool AllAtVersion(uint64_t version) const {
    for (const auto& client : clients) {
      if (client->applied_version() < version) {
        return false;
      }
    }
    return true;
  }
};

// Cold attach of N sessions: hello -> hello-ack -> snapshot for every
// client, driven to full sync.  One iteration is one whole fleet.
void BM_SessionAttach(benchmark::State& state) {
  const int sessions = static_cast<int>(state.range(0));
  double attach_seconds = 0;
  int64_t fleets = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto fleet = std::make_unique<Fleet>(sessions);
    state.ResumeTiming();
    auto start = std::chrono::steady_clock::now();
    for (auto& client : fleet->clients) {
      client->Connect(0);
    }
    int guard = 0;
    while (!fleet->AllSynced() && ++guard < 100000) {
      fleet->Step();
    }
    attach_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    ++fleets;
    state.PauseTiming();
    fleet.reset();
    state.ResumeTiming();
  }
  if (attach_seconds > 0) {
    MetricsRegistry::Instance()
        .gauge("server.bench.attach_sessions_per_sec")
        .Set(static_cast<int64_t>(fleets * sessions / attach_seconds));
  }
  state.SetItemsProcessed(state.iterations() * sessions);
}
BENCHMARK(BM_SessionAttach)->Arg(64)->Arg(256);

// One edit fanned out to N attached sessions: submit on client 0, drive the
// transport until every replica applied the versioned update.  The manual
// per-edit timings feed the end-to-end p99 gauge; the in-library
// server.fanout.latency_us histogram captures the server-side loop alone.
// With `traced` the run also allocates a flow id per edit and records the
// full propagation span chain, which is what the workload pays with
// ATK_TRACE=1 ATK_TRACE_FLOWS=1.
void RunEditFanOut(benchmark::State& state, bool traced) {
  const int sessions = static_cast<int>(state.range(0));
  using atk::observability::MemoryAccountant;
  MemoryAccountant& accountant = MemoryAccountant::Instance();
  accountant.ResetPeaks();
  const int64_t mem_before = accountant.total();
  Fleet fleet(sessions);
  for (auto& client : fleet.clients) {
    client->Connect(0);
  }
  int guard = 0;
  while (!fleet.AllSynced() && ++guard < 100000) {
    fleet.Step();
  }
  const bool was_tracing = atk::observability::Enabled();
  if (traced) {
    atk::observability::Tracer::Instance().SetEnabled(true);
    atk::observability::Tracer::Instance().SetFlowsEnabled(true);
  }
  uint64_t version = fleet.server.version("bench");
  bool insert = true;
  std::vector<double> per_edit_ns;
  for (auto _ : state) {
    EditOp op;
    if (insert) {
      op.kind = EditOp::Kind::kInsert;
      op.pos = 0;
      op.len = 1;
      op.text = "x";
    } else {
      op.kind = EditOp::Kind::kDelete;
      op.pos = 0;
      op.len = 1;
    }
    insert = !insert;
    auto start = std::chrono::steady_clock::now();
    fleet.clients[0]->SubmitEdit(op);
    ++version;
    int edit_guard = 0;
    while (!fleet.AllAtVersion(version) && ++edit_guard < 100000) {
      fleet.Step();
    }
    per_edit_ns.push_back(
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - start)
            .count());
  }
  if (traced) {
    atk::observability::Tracer::Instance().SetFlowsEnabled(false);
    atk::observability::Tracer::Instance().SetEnabled(was_tracing);
  }
  if (!per_edit_ns.empty()) {
    std::sort(per_edit_ns.begin(), per_edit_ns.end());
    size_t idx = std::min(per_edit_ns.size() - 1,
                          static_cast<size_t>(per_edit_ns.size() * 0.99));
    MetricsRegistry::Instance()
        .gauge(traced ? "server.bench.fanout_traced_p99_us"
                      : "server.bench.fanout_p99_us")
        .SetMax(static_cast<int64_t>(per_edit_ns[idx] / 1000.0));
  }
  // Bytes-per-session gate (check_perf.sh): peak accounted bytes the whole
  // fleet added over the run, amortized per session.  Skipped when the
  // accountant is off (the Unaccounted overhead variant would record ~0).
  if (!traced && sessions == 256 && atk::observability::MemoryAccountingEnabled()) {
    MetricsRegistry::Instance()
        .gauge("server.bench.session_peak_bytes")
        .Set((accountant.peak() - mem_before + sessions - 1) / sessions);
  }
  state.SetItemsProcessed(state.iterations() * sessions);
}

void BM_EditFanOut(benchmark::State& state) { RunEditFanOut(state, false); }
BENCHMARK(BM_EditFanOut)->Arg(64)->Arg(256);

void BM_EditFanOut_Traced(benchmark::State& state) { RunEditFanOut(state, true); }
BENCHMARK(BM_EditFanOut_Traced)->Arg(64)->Arg(256);

// The untraced fan-out with the memory accountant off: check_perf.sh holds
// BM_EditFanOut/256 within 2% of this run.  The fleet is created and
// destroyed entirely inside the disabled window, so every charge pairs with
// its release and the gauges stay exact when accounting resumes.
void BM_EditFanOut_Unaccounted(benchmark::State& state) {
  atk::observability::SetMemoryAccountingEnabled(false);
  RunEditFanOut(state, false);
  atk::observability::SetMemoryAccountingEnabled(true);
}
BENCHMARK(BM_EditFanOut_Unaccounted)->Arg(256);

}  // namespace
}  // namespace server
}  // namespace atk

ATK_BENCH_MAIN("bench_server");
