// Shared benchmark main(): console table plus machine-readable JSON lines.
//
// Every bench binary emits, in addition to google-benchmark's usual console
// output, one JSON object per completed measurement on stdout:
//
//   {"bench":"bench_update","metric":"BM_CoalescedUpdate/64","value":123.4,
//    "unit":"ns","iterations":10000}
//
// After the timed runs, the binary also dumps the final observability
// snapshot in the same line shape, namespaced so it can never collide with a
// benchmark name:
//
//   {"bench":"bench_update","metric":"counter/im.update.run","value":51,
//    "unit":"count","iterations":1}
//   {"bench":"bench_update","metric":"histogram/graphics.region.bands/p95",
//    "value":15,"unit":"value","iterations":1}
//
// so BENCH_RESULTS.json answers not just "how fast" but "doing how much
// work" (damage posts per cycle, clip reuses, span drops, ...).
//
// bench/run_all.sh collects these lines from every binary into
// BENCH_RESULTS.json.  The lines are self-delimiting (one object per line,
// always starting with {"bench":) so they survive being interleaved with the
// human-readable table.
//
// Replace BENCHMARK_MAIN(); at the bottom of a bench file with
// ATK_BENCH_MAIN("bench_whatever");

#ifndef ATK_BENCH_BENCH_JSON_H_
#define ATK_BENCH_BENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/observability/observability.h"

namespace atk_bench {

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    unsigned char byte = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (byte < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", byte);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

// Console reporter that additionally prints one JSON line per run.
class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonLineReporter(std::string bench) : bench_(std::move(bench)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    std::fflush(nullptr);  // Keep the table and the JSON lines ordered.
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      std::printf(
          "{\"bench\":\"%s\",\"metric\":\"%s\",\"value\":%.6g,"
          "\"unit\":\"%s\",\"iterations\":%lld}\n",
          JsonEscape(bench_).c_str(), JsonEscape(run.benchmark_name()).c_str(),
          run.GetAdjustedRealTime(), benchmark::GetTimeUnitString(run.time_unit),
          static_cast<long long>(run.iterations));
    }
    std::fflush(stdout);
  }

 private:
  std::string bench_;
};

// Dumps the end-of-run observability snapshot as JSON lines: every nonzero
// counter, every gauge, and p50/p95/p99 (+ count) per populated histogram.
// Zero counters are skipped — they are registrations the workload never hit.
inline void EmitMetricsSnapshot(const std::string& bench) {
  const std::string name = JsonEscape(bench);
  auto emit = [&name](const std::string& metric, double value, const char* unit) {
    std::printf("{\"bench\":\"%s\",\"metric\":\"%s\",\"value\":%.6g,"
                "\"unit\":\"%s\",\"iterations\":1}\n",
                name.c_str(), JsonEscape(metric).c_str(), value, unit);
  };
  atk::observability::TraceSnapshot snap = atk::observability::Snapshot();
  // Tracer accounting goes out unconditionally, so every binary contributes
  // a snapshot (run_all.sh treats a silent one as a failure) and ring
  // overwrites are visible per bench, not just in-process.
  emit("counter/obs.spans.recorded", static_cast<double>(snap.spans_recorded), "count");
  emit("counter/obs.spans.dropped", static_cast<double>(snap.spans_dropped), "count");
  for (const atk::observability::CounterSample& counter : snap.counters) {
    if (counter.value != 0) {
      emit("counter/" + counter.name, static_cast<double>(counter.value), "count");
    }
  }
  for (const atk::observability::GaugeSample& gauge : snap.gauges) {
    emit("gauge/" + gauge.name, static_cast<double>(gauge.value), "value");
  }
  for (const atk::observability::HistogramSample& histo : snap.histograms) {
    if (histo.count == 0) {
      continue;
    }
    emit("histogram/" + histo.name + "/count", static_cast<double>(histo.count), "count");
    emit("histogram/" + histo.name + "/p50", static_cast<double>(histo.p50), "value");
    emit("histogram/" + histo.name + "/p95", static_cast<double>(histo.p95), "value");
    emit("histogram/" + histo.name + "/p99", static_cast<double>(histo.p99), "value");
  }
  std::fflush(stdout);
}

}  // namespace atk_bench

#define ATK_BENCH_MAIN(bench_name)                                      \
  int main(int argc, char** argv) {                                     \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::atk_bench::JsonLineReporter reporter{bench_name};                 \
    ::benchmark::RunSpecifiedBenchmarks(&reporter);                     \
    ::atk_bench::EmitMetricsSnapshot(bench_name);                       \
    ::benchmark::Shutdown();                                            \
    return 0;                                                           \
  }
#endif  // ATK_BENCH_BENCH_JSON_H_
