// Shared benchmark main(): console table plus machine-readable JSON lines.
//
// Every bench binary emits, in addition to google-benchmark's usual console
// output, one JSON object per completed measurement on stdout:
//
//   {"bench":"bench_update","metric":"BM_CoalescedUpdate/64","value":123.4,
//    "unit":"ns","iterations":10000}
//
// After the timed runs, the binary also dumps the final observability
// snapshot in the same line shape, namespaced so it can never collide with a
// benchmark name (see bench/metric_lines.h, which holds the benchmark-free
// emitter so tests can validate the exact output):
//
//   {"bench":"bench_update","metric":"counter/im.update.run","value":51,
//    "unit":"count","iterations":1}
//
// so BENCH_RESULTS.json answers not just "how fast" but "doing how much
// work" (damage posts per cycle, clip reuses, span drops, ...).
//
// bench/run_all.sh collects these lines from every binary into
// BENCH_RESULTS.json.  A benchmark that errors (SkipWithError, setup
// failure) produces no timing line; the reporter counts those and
// ATK_BENCH_MAIN exits non-zero with the names on stderr — a partially
// wedged binary must fail the sweep, not pass on its surviving siblings'
// lines.
//
// Replace BENCHMARK_MAIN(); at the bottom of a bench file with
// ATK_BENCH_MAIN("bench_whatever");

#ifndef ATK_BENCH_BENCH_JSON_H_
#define ATK_BENCH_BENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/metric_lines.h"

namespace atk_bench {

// Console reporter that additionally prints one JSON line per run and
// records every errored run by name.
class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonLineReporter(std::string bench) : bench_(std::move(bench)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    std::fflush(nullptr);  // Keep the table and the JSON lines ordered.
    for (const Run& run : runs) {
      if (run.error_occurred) {
        errored_.push_back(run.benchmark_name() + ": " + run.error_message);
        continue;
      }
      std::printf(
          "{\"bench\":\"%s\",\"metric\":\"%s\",\"value\":%.6g,"
          "\"unit\":\"%s\",\"iterations\":%lld}\n",
          JsonEscape(bench_).c_str(), JsonEscape(run.benchmark_name()).c_str(),
          run.GetAdjustedRealTime(), benchmark::GetTimeUnitString(run.time_unit),
          static_cast<long long>(run.iterations));
    }
    std::fflush(stdout);
  }

  const std::vector<std::string>& errored() const { return errored_; }

 private:
  std::string bench_;
  std::vector<std::string> errored_;
};

}  // namespace atk_bench

#define ATK_BENCH_MAIN(bench_name)                                          \
  int main(int argc, char** argv) {                                         \
    /* Env plumbing (ATK_TRACE, ATK_MEM_BUDGET, ATK_MEM_SNAPSHOT) applies  \
       to every bench binary, windowed or not. */                           \
    ::atk::observability::InitFromEnv();                                    \
    ::benchmark::Initialize(&argc, argv);                                   \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;     \
    ::atk_bench::JsonLineReporter reporter{bench_name};                     \
    ::benchmark::RunSpecifiedBenchmarks(&reporter);                         \
    ::atk_bench::EmitMetricsSnapshot(bench_name);                           \
    ::benchmark::Shutdown();                                                \
    if (!reporter.errored().empty()) {                                      \
      for (const std::string& error : reporter.errored()) {                 \
        std::fprintf(stderr, "%s: benchmark errored: %s\n", bench_name,     \
                     error.c_str());                                        \
      }                                                                     \
      std::fprintf(stderr, "%s: %zu benchmark(s) errored\n", bench_name,    \
                   reporter.errored().size());                              \
      return 1;                                                             \
    }                                                                       \
    return 0;                                                               \
  }
#endif  // ATK_BENCH_BENCH_JSON_H_
