// Shared benchmark main(): console table plus machine-readable JSON lines.
//
// Every bench binary emits, in addition to google-benchmark's usual console
// output, one JSON object per completed measurement on stdout:
//
//   {"bench":"bench_update","metric":"BM_CoalescedUpdate/64","value":123.4,
//    "unit":"ns","iterations":10000}
//
// bench/run_all.sh collects these lines from every binary into
// BENCH_RESULTS.json.  The lines are self-delimiting (one object per line,
// always starting with {"bench":) so they survive being interleaved with the
// human-readable table.
//
// Replace BENCHMARK_MAIN(); at the bottom of a bench file with
// ATK_BENCH_MAIN("bench_whatever");

#ifndef ATK_BENCH_BENCH_JSON_H_
#define ATK_BENCH_BENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace atk_bench {

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    unsigned char byte = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (byte < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", byte);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

// Console reporter that additionally prints one JSON line per run.
class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonLineReporter(std::string bench) : bench_(std::move(bench)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    std::fflush(nullptr);  // Keep the table and the JSON lines ordered.
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      std::printf(
          "{\"bench\":\"%s\",\"metric\":\"%s\",\"value\":%.6g,"
          "\"unit\":\"%s\",\"iterations\":%lld}\n",
          JsonEscape(bench_).c_str(), JsonEscape(run.benchmark_name()).c_str(),
          run.GetAdjustedRealTime(), benchmark::GetTimeUnitString(run.time_unit),
          static_cast<long long>(run.iterations));
    }
    std::fflush(stdout);
  }

 private:
  std::string bench_;
};

}  // namespace atk_bench

#define ATK_BENCH_MAIN(bench_name)                                      \
  int main(int argc, char** argv) {                                     \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::atk_bench::JsonLineReporter reporter{bench_name};                 \
    ::benchmark::RunSpecifiedBenchmarks(&reporter);                     \
    ::benchmark::Shutdown();                                            \
    return 0;                                                           \
  }
#endif  // ATK_BENCH_BENCH_JSON_H_
