// E1 — §2's multiple-views claims: the delayed-update / observer machinery.
//
//   * notify cost as the number of views observing one data object grows
//     (the PageMaker-style many-views-one-buffer scenario);
//   * the auxiliary-object chain (table -> ChartData -> chart views);
//   * damage coalescing: N scattered WantUpdate posts, one update cycle.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "src/apps/standard_modules.h"
#include "src/base/interaction_manager.h"
#include "src/class_system/loader.h"
#include "src/components/table/chart.h"
#include "src/components/text/text_view.h"
#include "src/wm/window_system.h"

namespace atk {
namespace {

void Setup() {
  static bool done = [] {
    RegisterStandardModules();
    Loader::Instance().Require("text");
    Loader::Instance().Require("table");
    return true;
  }();
  (void)done;
}

// A grid host giving every child a slot.
class GridHost : public View {
 public:
  void Layout() override {
    if (graphic() == nullptr || children().empty()) {
      return;
    }
    Rect b = graphic()->LocalBounds();
    int n = static_cast<int>(children().size());
    int cols = 1;
    while (cols * cols < n) {
      ++cols;
    }
    int cw = std::max(8, b.width / cols);
    int ch = std::max(8, b.height / cols);
    for (int i = 0; i < n; ++i) {
      children()[static_cast<size_t>(i)]->Allocate(
          Rect{(i % cols) * cw, (i / cols) * ch, cw, ch}, graphic());
    }
  }
};

void BM_NotifyNViewsOfOneDataObject(benchmark::State& state) {
  Setup();
  int n = static_cast<int>(state.range(0));
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 512, 512, "views");
  TextData shared;
  shared.SetText("shared buffer under many views\n");
  GridHost host;
  std::vector<std::unique_ptr<TextView>> views;
  for (int i = 0; i < n; ++i) {
    views.push_back(std::make_unique<TextView>());
    views.back()->SetText(&shared);
    host.AddChild(views.back().get());
  }
  im->SetChild(&host);
  im->RunOnce();
  for (auto _ : state) {
    // One edit notifies all N views; one cycle repaints them all.
    shared.InsertString(0, "x");
    shared.DeleteRange(0, 1);
    im->RunOnce();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["views"] = n;
  state.counters["views_updated_per_cycle"] = static_cast<double>(
      im->stats().views_updated) / std::max<uint64_t>(im->stats().update_cycles, 1);
  for (auto& view : views) {
    view->SetText(nullptr);
  }
}
BENCHMARK(BM_NotifyNViewsOfOneDataObject)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_ObserverChainTableToChartViews(benchmark::State& state) {
  Setup();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 400, 200, "charts");
  TableData table;
  table.Resize(6, 2);
  for (int r = 0; r < 6; ++r) {
    table.SetText(r, 0, "row" + std::to_string(r));
    table.SetNumber(r, 1, r * 10 + 5);
  }
  ChartData chart;
  chart.SetSource(&table);
  chart.SetTitle("bench");
  GridHost host;
  PieChartView pie;
  BarChartView bar;
  pie.SetDataObject(&chart);
  bar.SetDataObject(&chart);
  host.AddChild(&pie);
  host.AddChild(&bar);
  im->SetChild(&host);
  im->RunOnce();
  double value = 1;
  for (auto _ : state) {
    // table -> ChartData -> two chart views, repainted in one cycle.
    table.SetNumber(2, 1, value);
    value += 1;
    im->RunOnce();
  }
  state.SetItemsProcessed(state.iterations());
  pie.SetDataObject(nullptr);
  bar.SetDataObject(nullptr);
}
BENCHMARK(BM_ObserverChainTableToChartViews);

void BM_DamageCoalescingNPosts(benchmark::State& state) {
  Setup();
  int posts = static_cast<int>(state.range(0));
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 512, 512, "damage");
  TextData text;
  text.SetText("damage target\n");
  TextView view;
  view.SetText(&text);
  im->SetChild(&view);
  im->RunOnce();
  uint64_t seed = 9;
  auto next = [&seed]() {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return seed;
  };
  for (auto _ : state) {
    for (int i = 0; i < posts; ++i) {
      int x = static_cast<int>(next() % 480);
      int y = static_cast<int>(next() % 480);
      view.PostUpdate(Rect{x, y, 32, 32});
    }
    im->RunOnce();  // All posts collapse into one pass.
  }
  state.SetItemsProcessed(state.iterations() * posts);
  state.counters["posts_per_cycle"] = posts;
  view.SetText(nullptr);
}
BENCHMARK(BM_DamageCoalescingNPosts)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

// ---- Thousand-rect region storm -------------------------------------------
//
// The scenario that motivated banding: a storm of small scattered damage
// rects accumulated into one region, then queried.  FlatBaseline is the
// pre-banding algorithm (disjoint rect vector, each Add subtracting every
// existing rect piecewise) kept verbatim as the comparison point.

class FlatRegion {
 public:
  void Add(const Rect& rect) {
    if (rect.IsEmpty()) {
      return;
    }
    std::vector<Rect> pending = {rect};
    for (const Rect& existing : rects_) {
      std::vector<Rect> next;
      for (const Rect& piece : pending) {
        AppendDifference(piece, existing, next);
      }
      pending = std::move(next);
      if (pending.empty()) {
        return;
      }
    }
    rects_.insert(rects_.end(), pending.begin(), pending.end());
  }

  int64_t Area() const {
    int64_t area = 0;
    for (const Rect& r : rects_) {
      area += r.Area();
    }
    return area;
  }

  size_t rect_count() const { return rects_.size(); }

 private:
  static void AppendDifference(const Rect& victim, const Rect& cut, std::vector<Rect>& out) {
    Rect overlap = victim.Intersect(cut);
    if (overlap.IsEmpty()) {
      out.push_back(victim);
      return;
    }
    if (overlap.y > victim.y) {
      out.push_back(Rect::FromCorners(victim.left(), victim.top(), victim.right(), overlap.top()));
    }
    if (overlap.bottom() < victim.bottom()) {
      out.push_back(
          Rect::FromCorners(victim.left(), overlap.bottom(), victim.right(), victim.bottom()));
    }
    if (overlap.left() > victim.left()) {
      out.push_back(
          Rect::FromCorners(victim.left(), overlap.top(), overlap.left(), overlap.bottom()));
    }
    if (overlap.right() < victim.right()) {
      out.push_back(
          Rect::FromCorners(overlap.right(), overlap.top(), victim.right(), overlap.bottom()));
    }
  }

  std::vector<Rect> rects_;
};

std::vector<Rect> StormRects(int n) {
  std::vector<Rect> rects;
  rects.reserve(static_cast<size_t>(n));
  uint64_t seed = 0x5f3759df;
  auto next = [&seed]() {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return seed;
  };
  for (int i = 0; i < n; ++i) {
    int x = static_cast<int>(next() % 2000);
    int y = static_cast<int>(next() % 2000);
    int w = 8 + static_cast<int>(next() % 48);
    int h = 8 + static_cast<int>(next() % 48);
    rects.push_back(Rect{x, y, w, h});
  }
  return rects;
}

void BM_RegionStorm_Banded(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<Rect> rects = StormRects(n);
  size_t final_rects = 0;
  for (auto _ : state) {
    Region region;
    for (const Rect& r : rects) {
      region.Add(r);
    }
    int64_t area = region.Area();
    benchmark::DoNotOptimize(area);
    final_rects = region.rect_count();
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["final_rects"] = static_cast<double>(final_rects);
}
BENCHMARK(BM_RegionStorm_Banded)->Arg(100)->Arg(1000);

void BM_RegionStorm_FlatBaseline(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<Rect> rects = StormRects(n);
  size_t final_rects = 0;
  for (auto _ : state) {
    FlatRegion region;
    for (const Rect& r : rects) {
      region.Add(r);
    }
    int64_t area = region.Area();
    benchmark::DoNotOptimize(area);
    final_rects = region.rect_count();
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["final_rects"] = static_cast<double>(final_rects);
}
BENCHMARK(BM_RegionStorm_FlatBaseline)->Arg(100)->Arg(1000);

void BM_ObserverAddRemove(benchmark::State& state) {
  Setup();
  TextData data;
  std::vector<std::unique_ptr<TextView>> views(64);
  for (auto& view : views) {
    view = std::make_unique<TextView>();
  }
  for (auto _ : state) {
    for (auto& view : views) {
      data.AddObserver(view.get());
    }
    for (auto& view : views) {
      data.RemoveObserver(view.get());
    }
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_ObserverAddRemove);

}  // namespace
}  // namespace atk

ATK_BENCH_MAIN("bench_update");
