// F1 — the §3 view-tree figure: event routing under parental authority.
//
// Regenerates the paper's central architectural artifact as measurements:
//   * routing a mouse event through the exact F1 tree (IM -> frame ->
//     scroll bar -> text -> table);
//   * dispatch cost as the tree deepens / widens, comparing the toolkit's
//     parental-authority walk against the global/physical pick that the
//     Andrew Base Editor used (the paper's baseline);
//   * one full update cycle through the F1 tree.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "src/apps/standard_modules.h"
#include "src/base/interaction_manager.h"
#include "src/class_system/loader.h"
#include "src/components/frame/frame_view.h"
#include "src/components/scroll/scrollbar_view.h"
#include "src/components/table/table_view.h"
#include "src/components/text/text_view.h"
#include "src/wm/window_system.h"

namespace atk {
namespace {

void Setup() {
  static bool done = [] {
    RegisterStandardModules();
    Loader::Instance().Require("text");
    Loader::Instance().Require("table");
    Loader::Instance().Require("scroll");
    Loader::Instance().Require("frame");
    return true;
  }();
  (void)done;
}

// The figure's tree: frame { message line, scroll bar { text [ table ] } }.
struct Figure1 {
  TextData letter;
  FrameView frame;
  ScrollBarView scrollbar;
  TextView text_view;
  std::unique_ptr<WindowSystem> ws;
  std::unique_ptr<InteractionManager> im;

  Figure1() {
    Setup();
    letter.InsertString(0, "February 11, 1988\n\nDear David,\n");
    letter.InsertString(letter.size(), "Enclosed is a list of our expenses ");
    auto table = std::make_unique<TableData>();
    table->Resize(3, 2);
    table->SetText(0, 0, "David");
    table->SetNumber(1, 1, 120);
    letter.InsertObject(letter.size(), std::move(table), "spread");
    letter.InsertString(letter.size(), "\nHope you have a nice...\n");
    text_view.SetText(&letter);
    scrollbar.SetBody(&text_view);
    frame.SetBody(&scrollbar);
    ws = WindowSystem::Open("itc");
    im = InteractionManager::Create(*ws, 420, 260, "figure 1");
    im->SetChild(&frame);
    im->RunOnce();
  }
};

void BM_Figure1_MouseEventThroughTree(benchmark::State& state) {
  Figure1 fig;
  // A point inside the embedded table: the deepest possible route.
  Point target = fig.text_view.children()[0]->DeviceBounds().center();
  for (auto _ : state) {
    fig.im->ProcessEvent(InputEvent::MouseAt(EventType::kMouseDown, target));
    fig.im->ProcessEvent(InputEvent::MouseAt(EventType::kMouseUp, target));
  }
  state.SetItemsProcessed(state.iterations() * 2);
  state.counters["tree_depth"] = 4;
}

void BM_Figure1_KeystrokeToFocusView(benchmark::State& state) {
  Figure1 fig;
  fig.im->SetInputFocus(&fig.text_view);
  int64_t before = fig.letter.size();
  for (auto _ : state) {
    fig.im->ProcessEvent(InputEvent::KeyPress('x'));
  }
  state.SetItemsProcessed(state.iterations());
  // Clean up the typed characters so repeated runs stay comparable.
  fig.letter.DeleteRange(before, fig.letter.size() - before);
}

void BM_Figure1_FullUpdateCycle(benchmark::State& state) {
  Figure1 fig;
  for (auto _ : state) {
    fig.frame.PostUpdate();
    fig.im->RunOnce();
  }
  state.SetItemsProcessed(state.iterations());
}

// ---- Depth/fanout sweep: parental vs global-physical dispatch ------------------

// A nest of pass-through containers ending in a leaf that accepts clicks.
class NestView : public View {
 public:
  void Layout() override {
    if (graphic() == nullptr || children().empty()) {
      return;
    }
    Rect b = graphic()->LocalBounds();
    children()[0]->Allocate(b.Inset(1), graphic());
  }
};

class LeafView : public View {
 public:
  View* Hit(const InputEvent&) override { return this; }
};

struct DeepTree {
  std::vector<std::unique_ptr<View>> containers;
  LeafView leaf;
  std::unique_ptr<WindowSystem> ws;
  std::unique_ptr<InteractionManager> im;

  explicit DeepTree(int depth) {
    Setup();
    ws = WindowSystem::Open("itc");
    im = InteractionManager::Create(*ws, 400, 300, "deep");
    View* parent = nullptr;
    for (int i = 0; i < depth; ++i) {
      containers.push_back(std::make_unique<NestView>());
      if (parent != nullptr) {
        parent->AddChild(containers.back().get());
      }
      parent = containers.back().get();
    }
    parent->AddChild(&leaf);
    im->SetChild(containers.front().get());
    im->RunOnce();
  }
};

void BM_Dispatch_ParentalByDepth(benchmark::State& state) {
  DeepTree tree(static_cast<int>(state.range(0)));
  Point center{200, 150};
  for (auto _ : state) {
    tree.im->ProcessEvent(InputEvent::MouseAt(EventType::kMouseDown, center));
    tree.im->ProcessEvent(InputEvent::MouseAt(EventType::kMouseUp, center));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_Dispatch_ParentalByDepth)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_Dispatch_GlobalPhysicalByDepth(benchmark::State& state) {
  DeepTree tree(static_cast<int>(state.range(0)));
  tree.im->SetDispatchMode(InteractionManager::DispatchMode::kGlobalPhysical);
  Point center{200, 150};
  for (auto _ : state) {
    tree.im->ProcessEvent(InputEvent::MouseAt(EventType::kMouseDown, center));
    tree.im->ProcessEvent(InputEvent::MouseAt(EventType::kMouseUp, center));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_Dispatch_GlobalPhysicalByDepth)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

// Fanout: one container with N leaf children side by side; hit the last one.
struct WideTree {
  std::vector<std::unique_ptr<LeafView>> leaves;
  std::unique_ptr<View> row;
  std::unique_ptr<WindowSystem> ws;
  std::unique_ptr<InteractionManager> im;

  explicit WideTree(int fanout) {
    Setup();
    class RowView : public View {
     public:
      void Layout() override {
        if (graphic() == nullptr || children().empty()) {
          return;
        }
        Rect b = graphic()->LocalBounds();
        int w = std::max(1, b.width / static_cast<int>(children().size()));
        for (size_t i = 0; i < children().size(); ++i) {
          children()[i]->Allocate(Rect{static_cast<int>(i) * w, 0, w, b.height}, graphic());
        }
      }
    };
    ws = WindowSystem::Open("itc");
    im = InteractionManager::Create(*ws, 1024, 100, "wide");
    row = std::make_unique<RowView>();
    for (int i = 0; i < fanout; ++i) {
      leaves.push_back(std::make_unique<LeafView>());
      row->AddChild(leaves.back().get());
    }
    im->SetChild(row.get());
    im->RunOnce();
  }
};

void BM_Dispatch_ParentalByFanout(benchmark::State& state) {
  WideTree tree(static_cast<int>(state.range(0)));
  Point last{1020, 50};
  for (auto _ : state) {
    tree.im->ProcessEvent(InputEvent::MouseAt(EventType::kMouseDown, last));
    tree.im->ProcessEvent(InputEvent::MouseAt(EventType::kMouseUp, last));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_Dispatch_ParentalByFanout)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_Dispatch_GlobalPhysicalByFanout(benchmark::State& state) {
  WideTree tree(static_cast<int>(state.range(0)));
  tree.im->SetDispatchMode(InteractionManager::DispatchMode::kGlobalPhysical);
  Point last{1020, 50};
  for (auto _ : state) {
    tree.im->ProcessEvent(InputEvent::MouseAt(EventType::kMouseDown, last));
    tree.im->ProcessEvent(InputEvent::MouseAt(EventType::kMouseUp, last));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_Dispatch_GlobalPhysicalByFanout)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// Thousand-rect damage storm through the F1 tree: a storm of scattered
// PostUpdates coalesces into one banded damage region, then one update pass
// walks the tree against it (the clip-memo path for the unchanged views).
void BM_Figure1_DamageStorm(benchmark::State& state) {
  Figure1 fig;
  int posts = static_cast<int>(state.range(0));
  uint64_t seed = 0x9e3779b9;
  auto next = [&seed]() {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return seed;
  };
  for (auto _ : state) {
    for (int i = 0; i < posts; ++i) {
      int x = static_cast<int>(next() % 400);
      int y = static_cast<int>(next() % 240);
      fig.text_view.PostUpdate(Rect{x, y, 12, 10});
    }
    fig.im->RunOnce();
  }
  state.SetItemsProcessed(state.iterations() * posts);
  state.counters["posts_per_cycle"] = posts;
}
BENCHMARK(BM_Figure1_DamageStorm)->Arg(1000);

BENCHMARK(BM_Figure1_MouseEventThroughTree);
BENCHMARK(BM_Figure1_KeystrokeToFocusView);
BENCHMARK(BM_Figure1_FullUpdateCycle);

}  // namespace
}  // namespace atk

ATK_BENCH_MAIN("bench_view_tree");
