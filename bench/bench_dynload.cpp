// E3 — §6/§7: dynamic loading and the runapp sharing model.
//
// Before the timed benchmarks, main() prints the §7 accounting table: for
// each application, the memory footprint under three regimes —
//   (a) static linking: every app binary carries the toolkit + components;
//   (b) runapp: one resident base, apps (and components) demand-loaded;
//   (c) runapp after first use: only the modules actually touched.
// The paper's claims (less paging, smaller VM, smaller files, shared code)
// fall out of the totals.  Timed benchmarks then measure first-embed load
// latency and name-resolution cost.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include <cstdio>

#include "src/apps/standard_modules.h"
#include "src/base/application.h"
#include "src/class_system/loader.h"
#include "src/wm/window_system.h"
#include "src/workload/workload.h"

namespace atk {

const char* const kApps[] = {"ez", "messages", "help", "typescript", "console", "preview"};

size_t SpecBytes(const char* module) {
  const ModuleSpec* spec = Loader::Instance().FindSpec(module);
  return spec == nullptr ? 0 : spec->text_bytes + spec->data_bytes;
}

// Transitive footprint of a module and its dependencies.
size_t ClosureBytes(const std::string& module, std::vector<std::string>& seen) {
  for (const std::string& name : seen) {
    if (name == module) {
      return 0;
    }
  }
  seen.push_back(module);
  const ModuleSpec* spec = Loader::Instance().FindSpec(module);
  if (spec == nullptr) {
    return 0;
  }
  size_t total = spec->text_bytes + spec->data_bytes;
  for (const std::string& dep : spec->depends_on) {
    total += ClosureBytes(dep, seen);
  }
  return total;
}

void PrintRunappTable() {
  Loader& loader = Loader::Instance();
  size_t base = SpecBytes("toolkit-base");
  // Component set a static link would bundle (every component, as the 1988
  // statically-linked binaries did).
  const char* const kAllComponents[] = {"text",   "table", "drawing", "equation",
                                        "raster", "animation", "scroll", "frame", "widgets"};
  size_t all_components = 0;
  for (const char* component : kAllComponents) {
    all_components += SpecBytes(component);
  }

  std::printf("=== E3: runapp vs static linking (simulated 1988 footprints) ===\n");
  std::printf("%-12s %18s %18s %22s\n", "app", "static binary (KB)", "runapp full (KB)",
              "runapp demand (KB)");
  size_t static_total = 0;
  size_t runapp_marginal_total = 0;
  for (const char* app : kApps) {
    std::string module = std::string("app-") + app;
    // (a) static: base + all components + the app.
    size_t static_size = base + all_components + SpecBytes(module.c_str());
    // (b) runapp, everything loaded: base shared; marginal cost = closure.
    std::vector<std::string> seen = {"toolkit-base"};
    size_t closure = ClosureBytes(module, seen);
    // (c) demand: app + its declared deps only (what first launch touches).
    static_total += static_size;
    runapp_marginal_total += closure;
    std::printf("%-12s %18zu %18zu %22zu\n", app, static_size / 1024,
                (base + closure) / 1024, closure / 1024);
  }
  std::printf("%-12s %18zu %18zu %22zu\n", "ALL 6 APPS", static_total / 1024,
              (base + all_components +
               [] {
                 size_t apps = 0;
                 for (const char* app : kApps) {
                   apps += SpecBytes((std::string("app-") + app).c_str());
                 }
                 return apps;
               }()) /
                  1024,
              (base + runapp_marginal_total) / 1024);
  std::printf("shared resident base: %zu KB counted once under runapp, %d times "
              "under static linking\n\n",
              base / 1024, static_cast<int>(sizeof(kApps) / sizeof(kApps[0])));
  (void)loader;
}

void PrintFirstUseLatencies() {
  Loader& loader = Loader::Instance();
  loader.UnloadAllForTest();
  loader.ClearLoadLog();
  std::printf("=== E3: simulated first-embed load latency (dlopen + page-in model) ===\n");
  for (const char* cls : {"text", "table", "draw", "eq", "raster", "animation"}) {
    loader.EnsureClass(cls);
  }
  for (const auto& record : loader.load_log()) {
    std::printf("  load %-12s %6zu KB text  ~%llu us%s\n", record.module.c_str(),
                record.text_bytes / 1024,
                static_cast<unsigned long long>(record.simulated_cost_us),
                record.as_dependency ? "  (dependency)" : "");
  }
  std::printf("\n");
}

void BM_EnsureClassAlreadyLoaded(benchmark::State& state) {
  Loader& loader = Loader::Instance();
  loader.Require("text");
  for (auto _ : state) {
    benchmark::DoNotOptimize(loader.EnsureClass("textview"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnsureClassAlreadyLoaded);

void BM_EnsureClassWithModuleLoad(benchmark::State& state) {
  Loader& loader = Loader::Instance();
  for (auto _ : state) {
    state.PauseTiming();
    loader.UnloadAllForTest();
    state.ResumeTiming();
    benchmark::DoNotOptimize(loader.EnsureClass("raster"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnsureClassWithModuleLoad);

void BM_NamedConstructionThroughRegistry(benchmark::State& state) {
  Loader& loader = Loader::Instance();
  loader.Require("table");
  for (auto _ : state) {
    std::unique_ptr<Object> obj = loader.NewObject("table");
    benchmark::DoNotOptimize(obj);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NamedConstructionThroughRegistry);

void BM_RunAppColdStart(benchmark::State& state) {
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  for (auto _ : state) {
    state.PauseTiming();
    Loader::Instance().UnloadAllForTest();
    state.ResumeTiming();
    std::unique_ptr<InteractionManager> im = RunApp("console", *ws);
    benchmark::DoNotOptimize(im);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RunAppColdStart);

void BM_RunAppWarmStart(benchmark::State& state) {
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  Loader::Instance().Require("app-console");
  for (auto _ : state) {
    std::unique_ptr<InteractionManager> im = RunApp("console", *ws);
    benchmark::DoNotOptimize(im);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RunAppWarmStart);

// Reading a document whose components must all be demand-loaded vs all hot.
void BM_ReadCompoundDocumentCold(benchmark::State& state) {
  WorkloadRng rng(11);
  CompoundDocumentSpec spec;
  spec.rasters = 1;
  Loader::Instance().Require("text");
  std::unique_ptr<TextData> doc = GenerateCompoundDocument(rng, spec);
  std::string serialized = WriteDocument(*doc);
  doc.reset();
  for (auto _ : state) {
    state.PauseTiming();
    Loader::Instance().UnloadAllForTest();
    state.ResumeTiming();
    ReadContext ctx;
    std::unique_ptr<DataObject> read = ReadDocument(serialized, &ctx);
    benchmark::DoNotOptimize(read);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadCompoundDocumentCold);

void BM_ReadCompoundDocumentWarm(benchmark::State& state) {
  WorkloadRng rng(11);
  CompoundDocumentSpec spec;
  spec.rasters = 1;
  Loader::Instance().Require("text");
  std::unique_ptr<TextData> doc = GenerateCompoundDocument(rng, spec);
  std::string serialized = WriteDocument(*doc);
  for (auto _ : state) {
    ReadContext ctx;
    std::unique_ptr<DataObject> read = ReadDocument(serialized, &ctx);
    benchmark::DoNotOptimize(read);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadCompoundDocumentWarm);

}  // namespace atk

int main(int argc, char** argv) {
  atk::RegisterStandardModules();
  atk::PrintRunappTable();
  atk::PrintFirstUseLatencies();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  atk_bench::JsonLineReporter reporter{"bench_dynload"};
  benchmark::RunSpecifiedBenchmarks(&reporter);
  atk_bench::EmitMetricsSnapshot("bench_dynload");
  benchmark::Shutdown();
  return 0;
}
