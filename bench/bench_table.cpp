// F5 (spreadsheet side) — the table component: Pascal's-Triangle
// recalculation as the triangle grows, dependency-chain depth sweeps,
// formula parsing, cycle detection, and cell-edit-to-repaint latency.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "src/apps/standard_modules.h"
#include "src/base/interaction_manager.h"
#include "src/class_system/loader.h"
#include "src/components/table/table_view.h"
#include "src/wm/window_system.h"
#include "src/workload/workload.h"

namespace atk {
namespace {

void Setup() {
  static bool done = [] {
    RegisterStandardModules();
    Loader::Instance().Require("table");
    return true;
  }();
  (void)done;
}

void BM_PascalRecalcByRows(benchmark::State& state) {
  Setup();
  std::unique_ptr<TableData> pascal = GeneratePascalTriangle(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    pascal->Recalculate();
    benchmark::DoNotOptimize(pascal->Value(static_cast<int>(state.range(0)) - 1, 0));
  }
  state.SetItemsProcessed(state.iterations() * pascal->last_recalc_evaluations());
  state.counters["formula_cells"] = pascal->last_recalc_evaluations();
}
BENCHMARK(BM_PascalRecalcByRows)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

void BM_LinearDependencyChain(benchmark::State& state) {
  Setup();
  int n = static_cast<int>(state.range(0));
  TableData table;
  table.Resize(1, n);
  table.SetNumber(0, 0, 1);
  for (int c = 1; c < n; ++c) {
    table.SetFormula(0, c, CellRef{0, c - 1}.ToA1() + "+1");
  }
  for (auto _ : state) {
    table.Recalculate();
    benchmark::DoNotOptimize(table.Value(0, n - 1));
  }
  state.SetItemsProcessed(state.iterations() * (n - 1));
}
BENCHMARK(BM_LinearDependencyChain)->Arg(8)->Arg(32)->Arg(128);

void BM_RangeHeavySheet(benchmark::State& state) {
  Setup();
  WorkloadRng rng(12);
  std::unique_ptr<TableData> sheet =
      GenerateSpreadsheet(rng, static_cast<int>(state.range(0)), 8, 0.4);
  for (auto _ : state) {
    sheet->Recalculate();
    benchmark::DoNotOptimize(sheet->recalc_count());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RangeHeavySheet)->Arg(8)->Arg(32)->Arg(128);

void BM_FormulaParse(benchmark::State& state) {
  Setup();
  const char* formulas[] = {"A1+B2*3", "SUM(A1:D8)/COUNT(A1:D8)",
                            "IF(B3>100,SUM(A1:A9),MAX(C1,C2,C3))", "SQRT(ABS(A1-B1))"};
  size_t index = 0;
  for (auto _ : state) {
    ParsedFormula parsed = ParseFormula(formulas[index % 4]);
    benchmark::DoNotOptimize(parsed);
    ++index;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FormulaParse);

void BM_CycleDetectionWorstCase(benchmark::State& state) {
  Setup();
  int n = static_cast<int>(state.range(0));
  TableData table;
  table.Resize(1, n);
  // A full cycle through every cell.
  for (int c = 0; c < n; ++c) {
    table.SetFormula(0, c, CellRef{0, (c + 1) % n}.ToA1());
  }
  for (auto _ : state) {
    table.Recalculate();
    benchmark::DoNotOptimize(table.at(0, 0).error);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CycleDetectionWorstCase)->Arg(8)->Arg(64);

void BM_CellEditToRepaint(benchmark::State& state) {
  Setup();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 400, 280, "sheet");
  std::unique_ptr<TableData> pascal = GeneratePascalTriangle(10);
  TableView view;
  view.SetDataObject(pascal.get());
  im->SetChild(&view);
  im->RunOnce();
  double apex = 1;
  for (auto _ : state) {
    // One cell edit: full recalculation + notify + clipped repaint.
    pascal->SetNumber(0, 0, apex);
    apex = apex == 1 ? 2 : 1;
    im->RunOnce();
  }
  state.SetItemsProcessed(state.iterations());
  view.SetDataObject(nullptr);
}
BENCHMARK(BM_CellEditToRepaint);

void BM_KeyboardSpreadsheetEntry(benchmark::State& state) {
  Setup();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 400, 280, "entry");
  TableData table;
  table.Resize(20, 6);
  TableView view;
  view.SetDataObject(&table);
  im->SetChild(&view);
  im->SetInputFocus(&view);
  im->RunOnce();
  for (auto _ : state) {
    state.PauseTiming();
    view.SelectCell(0, 0);
    state.ResumeTiming();
    for (char ch : std::string("=1+2\r42\r")) {  // A formula, then a number.
      im->ProcessEvent(InputEvent::KeyPress(ch));
    }
    im->RunOnce();
  }
  state.SetItemsProcessed(state.iterations() * 2);
  view.SetDataObject(nullptr);
}
BENCHMARK(BM_KeyboardSpreadsheetEntry);

void BM_TableRoundTripByShape(benchmark::State& state) {
  Setup();
  WorkloadRng rng(13);
  std::unique_ptr<TableData> sheet =
      GenerateSpreadsheet(rng, static_cast<int>(state.range(0)), 8, 0.3);
  std::string serialized = WriteDocument(*sheet);
  for (auto _ : state) {
    ReadContext ctx;
    std::unique_ptr<DataObject> read = ReadDocument(serialized, &ctx);
    benchmark::DoNotOptimize(read);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(serialized.size()));
}
BENCHMARK(BM_TableRoundTripByShape)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
}  // namespace atk

ATK_BENCH_MAIN("bench_table");
