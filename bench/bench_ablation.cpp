// Ablations for the design choices DESIGN.md §5 calls out: what the paper's
// architecture buys relative to the obvious simpler alternative.
//
//   * delayed update (coalesced damage) vs immediate update-per-change;
//   * gap buffer vs a naive contiguous string buffer;
//   * damage as a disjoint Region vs a single bounding rectangle
//     (overdraw measured in repainted pixels);
//   * keymap-chain key dispatch vs proc-table lookup by composed name.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "src/apps/standard_modules.h"
#include "src/base/interaction_manager.h"
#include "src/base/proctable.h"
#include "src/class_system/loader.h"
#include "src/components/text/gap_buffer.h"
#include "src/components/text/text_view.h"
#include "src/graphics/region.h"
#include "src/wm/window_system.h"
#include "src/workload/workload.h"

namespace atk {
namespace {

void LoadModules() {
  static bool done = [] {
    RegisterStandardModules();
    Loader::Instance().Require("text");
    return true;
  }();
  (void)done;
}

// ---- Delayed vs immediate update ----------------------------------------------

void BM_Update_DelayedCoalesced(benchmark::State& state) {
  LoadModules();
  int edits = static_cast<int>(state.range(0));
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 400, 300, "delayed");
  TextData text;
  WorkloadRng rng(1);
  text.SetText(GenerateProse(rng, 200));
  TextView view;
  view.SetText(&text);
  im->SetChild(&view);
  im->SetInputFocus(&view);
  im->RunOnce();
  for (auto _ : state) {
    for (int i = 0; i < edits; ++i) {
      im->ProcessEvent(InputEvent::KeyPress('a'));  // Damage accumulates...
    }
    im->RunOnce();  // ...and is repainted once (the paper's §2 design).
  }
  state.SetItemsProcessed(state.iterations() * edits);
  view.SetText(nullptr);
}
BENCHMARK(BM_Update_DelayedCoalesced)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_Update_ImmediatePerChange(benchmark::State& state) {
  LoadModules();
  int edits = static_cast<int>(state.range(0));
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 400, 300, "immediate");
  TextData text;
  WorkloadRng rng(1);
  text.SetText(GenerateProse(rng, 200));
  TextView view;
  view.SetText(&text);
  im->SetChild(&view);
  im->SetInputFocus(&view);
  im->RunOnce();
  for (auto _ : state) {
    for (int i = 0; i < edits; ++i) {
      im->ProcessEvent(InputEvent::KeyPress('a'));
      im->RunUpdateCycle();  // The ablated design: repaint on every change.
    }
    im->RunOnce();
  }
  state.SetItemsProcessed(state.iterations() * edits);
  view.SetText(nullptr);
}
BENCHMARK(BM_Update_ImmediatePerChange)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// ---- Gap buffer vs naive string ------------------------------------------------

void BM_Buffer_GapBufferEditingBurst(benchmark::State& state) {
  int64_t doc = state.range(0);
  GapBuffer buffer;
  buffer.Insert(0, std::string(static_cast<size_t>(doc), 'x'));
  int64_t caret = doc / 2;
  for (auto _ : state) {
    // A burst of 64 local edits, the common editing pattern.
    for (int i = 0; i < 64; ++i) {
      buffer.Insert(caret, "y");
      ++caret;
    }
    for (int i = 0; i < 64; ++i) {
      --caret;
      buffer.Delete(caret, 1);
    }
  }
  state.SetItemsProcessed(state.iterations() * 128);
  state.counters["doc_bytes"] = static_cast<double>(doc);
}
BENCHMARK(BM_Buffer_GapBufferEditingBurst)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_Buffer_NaiveStringEditingBurst(benchmark::State& state) {
  size_t doc = static_cast<size_t>(state.range(0));
  std::string buffer(doc, 'x');
  size_t caret = doc / 2;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      buffer.insert(caret, 1, 'y');
      ++caret;
    }
    for (int i = 0; i < 64; ++i) {
      --caret;
      buffer.erase(caret, 1);
    }
  }
  state.SetItemsProcessed(state.iterations() * 128);
  state.counters["doc_bytes"] = static_cast<double>(doc);
}
BENCHMARK(BM_Buffer_NaiveStringEditingBurst)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

// ---- Region vs bounding-rect damage ----------------------------------------------
// Two small damage spots in opposite corners: the Region repaints two
// patches; a bounds-only design repaints (nearly) the whole window.

void BM_Damage_DisjointRegion(benchmark::State& state) {
  Region region;
  int64_t repainted = 0;
  for (auto _ : state) {
    region.Clear();
    region.Add(Rect{0, 0, 32, 32});
    region.Add(Rect{968, 668, 32, 32});
    repainted = region.Area();
    benchmark::DoNotOptimize(repainted);
  }
  state.counters["pixels_repainted"] = static_cast<double>(repainted);
}
BENCHMARK(BM_Damage_DisjointRegion);

void BM_Damage_BoundingRectOnly(benchmark::State& state) {
  int64_t repainted = 0;
  for (auto _ : state) {
    Rect bounds;
    bounds = bounds.Union(Rect{0, 0, 32, 32});
    bounds = bounds.Union(Rect{968, 668, 32, 32});
    repainted = bounds.Area();
    benchmark::DoNotOptimize(repainted);
  }
  state.counters["pixels_repainted"] = static_cast<double>(repainted);
}
BENCHMARK(BM_Damage_BoundingRectOnly);

// ---- Key dispatch: keymap chain vs flat proc lookup ---------------------------------

void BM_Keys_SequenceThroughKeymapChain(benchmark::State& state) {
  LoadModules();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 200, 100, "keys");
  TextData text;
  text.SetText("x");
  TextView view;
  view.SetText(&text);
  im->SetChild(&view);
  im->SetInputFocus(&view);
  im->RunOnce();
  for (auto _ : state) {
    im->ProcessEvent(InputEvent::KeyPress(Ctl('f')));  // Bound: forward-char.
    im->ProcessEvent(InputEvent::KeyPress(Ctl('b')));  // Bound: backward-char.
  }
  state.SetItemsProcessed(state.iterations() * 2);
  view.SetText(nullptr);
}
BENCHMARK(BM_Keys_SequenceThroughKeymapChain);

void BM_Keys_DirectProcInvoke(benchmark::State& state) {
  LoadModules();
  TextData text;
  text.SetText("x");
  TextView view;
  view.SetText(&text);
  for (auto _ : state) {
    ProcTable::Instance().Invoke("textview-forward-char", &view);
    ProcTable::Instance().Invoke("textview-backward-char", &view);
  }
  state.SetItemsProcessed(state.iterations() * 2);
  view.SetText(nullptr);
}
BENCHMARK(BM_Keys_DirectProcInvoke);

}  // namespace
}  // namespace atk

ATK_BENCH_MAIN("bench_ablation");
