// The application-shaped scenario suite under the clock (DESIGN.md §10).
//
// Three whole-application workloads, each crossing several layers per
// iteration so a regression in any of them moves a headline number:
//
//   BM_TypescriptStream   — console lines into a live view tree (text
//                           ingestion + observer notify + damage coalescing
//                           + layout prefix reuse)
//   BM_MailCorpusRoundTrip — compound documents through write -> corrupt ->
//                           salvage -> read -> re-write -> re-read (writer
//                           chunking, zero-copy reader, deferred decode,
//                           salvager)
//   BM_ReplayFanOut       — a recorded multi-session edit trace replayed
//                           against a fresh server (observer fan-out,
//                           go-back-N, resync)
//
// Beyond the wall-time rows, the observability snapshot contributes the
// acceptance numbers check_perf.sh gates on:
//   gauge/scenario.bench.typescript_lines_per_sec
//   gauge/scenario.bench.mail_docs_per_sec
//   gauge/scenario.bench.replay_fanout_p99_us
//   histogram/scenario.replay.fanout_us/p99

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include <chrono>

#include "src/observability/observability.h"
#include "src/workload/edit_replay.h"
#include "src/workload/mail_corpus.h"
#include "src/workload/typescript_stream.h"

namespace atk {
namespace {

using observability::MetricsRegistry;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

void BM_TypescriptStream(benchmark::State& state) {
  TypescriptStreamSpec spec;
  spec.seed = 17;
  spec.lines = static_cast<int>(state.range(0));
  spec.batch_lines = 64;
  spec.views = 2;
  int64_t lines = 0;
  int64_t bytes = 0;
  double seconds = 0.0;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    TypescriptStreamResult result = RunTypescriptStream(spec);
    seconds += SecondsSince(start);
    benchmark::DoNotOptimize(result.transcript_digest);
    lines += result.lines;
    bytes += result.bytes;
  }
  state.SetItemsProcessed(lines);
  state.SetBytesProcessed(bytes);
  if (seconds > 0.0) {
    MetricsRegistry::Instance()
        .gauge("scenario.bench.typescript_lines_per_sec")
        .SetMax(static_cast<int64_t>(static_cast<double>(lines) / seconds));
  }
}
BENCHMARK(BM_TypescriptStream)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_MailCorpusRoundTrip(benchmark::State& state) {
  MailCorpusSpec spec;
  spec.seed = 29;
  spec.messages = static_cast<int>(state.range(0));
  spec.folders = 4;
  spec.embed_fraction = 0.5;
  spec.corrupt_fraction = 0.25;
  spec.stream_faults = 2;
  int64_t docs = 0;
  int64_t bytes = 0;
  double seconds = 0.0;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    MailCorpusResult result = RunMailCorpus(spec);
    seconds += SecondsSince(start);
    benchmark::DoNotOptimize(result.corpus_digest);
    docs += result.messages;
    bytes += result.bytes_written;
    if (result.read_failures != 0 || result.clean_roundtrip_mismatches != 0) {
      state.SkipWithError("mail corpus round trip corrupted data");
      return;
    }
  }
  state.SetItemsProcessed(docs);
  state.SetBytesProcessed(bytes);
  if (seconds > 0.0) {
    MetricsRegistry::Instance()
        .gauge("scenario.bench.mail_docs_per_sec")
        .SetMax(static_cast<int64_t>(static_cast<double>(docs) / seconds));
  }
}
BENCHMARK(BM_MailCorpusRoundTrip)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_ReplayFanOut(benchmark::State& state) {
  SessionTraceSpec trace_spec;
  trace_spec.seed = 11;
  trace_spec.sessions = 3;
  trace_spec.steps = static_cast<int>(state.range(0));
  // Recording drives a live lock-step server; do it once, outside the timed
  // loop — the replay is the measured path.
  static const EditTrace& trace = *new EditTrace(RecordEditTrace(trace_spec));
  std::string expected = ExpectedReplayText(trace);
  int64_t edits = 0;
  for (auto _ : state) {
    ReplayResult result = ReplayEditTrace(trace);
    benchmark::DoNotOptimize(result.final_digest);
    edits += result.edits_applied;
    if (!result.completed || !result.replicas_converged || result.final_text != expected) {
      state.SkipWithError("replay diverged from the recorded trace");
      return;
    }
  }
  state.SetItemsProcessed(edits);
  // The engine observed per-edit submit->applied wall time into
  // scenario.replay.fanout_us; surface its p99 as the gated gauge.
  MetricsRegistry::Instance()
      .gauge("scenario.bench.replay_fanout_p99_us")
      .SetMax(static_cast<int64_t>(
          MetricsRegistry::Instance().histogram("scenario.replay.fanout_us").p99()));
}
BENCHMARK(BM_ReplayFanOut)->Arg(48)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace atk

ATK_BENCH_MAIN("bench_scenarios");
