// E4 — §8's window-system independence: the same drawing/op stream through
// both simulated backends, request/flush accounting, exposure-recovery cost,
// and the size of the porting surface.  main() first prints the porting
// table ("six classes ... approximately 70 routines").

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include <cstdio>
#include <map>

#include "src/apps/standard_modules.h"
#include "src/base/interaction_manager.h"
#include "src/class_system/loader.h"
#include "src/components/frame/frame_view.h"
#include "src/components/scroll/scrollbar_view.h"
#include "src/components/text/text_view.h"
#include "src/wm/wm_itc.h"
#include "src/wm/wm_x11sim.h"
#include "src/wm/window_system.h"
#include "src/workload/workload.h"

namespace atk {

void PrintPortingSurface() {
  std::vector<std::string> routines = WindowSystem::PortingRoutines();
  std::map<std::string, int> per_class;
  for (const std::string& routine : routines) {
    per_class[routine.substr(0, routine.find(':'))] += 1;
  }
  std::printf("=== E4: the porting surface (six classes, ~70 routines) ===\n");
  for (const auto& [cls, count] : per_class) {
    std::printf("  %-18s %3d routines\n", cls.c_str(), count);
  }
  std::printf("  %-18s %3zu routines total (paper says \"approximately 70\")\n\n", "TOTAL",
              routines.size());
}

namespace {

void Setup() {
  static bool done = [] {
    RegisterStandardModules();
    Loader::Instance().Require("text");
    Loader::Instance().Require("scroll");
    Loader::Instance().Require("frame");
    return true;
  }();
  (void)done;
}

void DrawScene(Graphic* g) {
  g->Clear();
  g->DrawRect(Rect{5, 5, 300, 180});
  g->SetFont(FontSpec{"andy", 10, kPlain});
  for (int i = 0; i < 10; ++i) {
    g->DrawString(Point{10, 10 + i * 14}, "window system independent line of text");
    g->DrawLine(Point{0, i * 20}, Point{319, 199 - i * 20});
  }
  g->FillEllipse(Rect{200, 60, 80, 50});
}

void BM_OpStreamPerBackend(benchmark::State& state) {
  Setup();
  const char* backend = state.range(0) == 0 ? "itc" : "x11";
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open(backend);
  std::unique_ptr<WmWindow> window = ws->CreateWindow(320, 200, "scene");
  for (auto _ : state) {
    DrawScene(window->GetGraphic());
    window->Flush();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(backend);
  state.counters["requests"] = static_cast<double>(window->RequestCount());
}
BENCHMARK(BM_OpStreamPerBackend)->Arg(0)->Arg(1);

void BM_FlushGranularity_X11PerOp(benchmark::State& state) {
  Setup();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("x11");
  std::unique_ptr<WmWindow> window = ws->CreateWindow(320, 200, "per-op");
  for (auto _ : state) {
    Graphic* g = window->GetGraphic();
    for (int i = 0; i < 32; ++i) {
      g->DrawLine(Point{0, i}, Point{319, i});
      window->Flush();  // Chatty client: one round trip per request.
    }
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_FlushGranularity_X11PerOp);

void BM_FlushGranularity_X11Batched(benchmark::State& state) {
  Setup();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("x11");
  std::unique_ptr<WmWindow> window = ws->CreateWindow(320, 200, "batched");
  for (auto _ : state) {
    Graphic* g = window->GetGraphic();
    for (int i = 0; i < 32; ++i) {
      g->DrawLine(Point{0, i}, Point{319, i});
    }
    window->Flush();  // The toolkit's model: one flush per update cycle.
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_FlushGranularity_X11Batched);

void BM_ExposureRecovery_X11(benchmark::State& state) {
  // No backing store: obscure/unobscure forces a client repaint.
  Setup();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("x11");
  TextData text;
  WorkloadRng rng(3);
  text.SetText(GenerateProse(rng, 300));
  TextView view;
  view.SetText(&text);
  auto im = InteractionManager::Create(*ws, 400, 240, "exposed");
  im->SetChild(&view);
  im->RunOnce();
  X11Window* window = ObjectCast<X11Window>(im->window());
  for (auto _ : state) {
    window->Obscure(Rect{80, 60, 200, 120});
    window->Unobscure();
    im->RunOnce();  // Handles the expose event with a clipped repaint.
  }
  state.SetItemsProcessed(state.iterations());
  view.SetText(nullptr);
}
BENCHMARK(BM_ExposureRecovery_X11);

void BM_ExposureRecovery_ItcHasNone(benchmark::State& state) {
  // The ITC wm preserves contents: the same overlap costs only two blits.
  Setup();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  TextData text;
  WorkloadRng rng(3);
  text.SetText(GenerateProse(rng, 300));
  TextView view;
  view.SetText(&text);
  auto im = InteractionManager::Create(*ws, 400, 240, "preserved");
  im->SetChild(&view);
  im->RunOnce();
  ItcWindow* window = ObjectCast<ItcWindow>(im->window());
  for (auto _ : state) {
    window->Obscure(Rect{80, 60, 200, 120});
    window->Unobscure();
    im->RunOnce();  // No expose event: nothing to repaint.
  }
  state.SetItemsProcessed(state.iterations());
  view.SetText(nullptr);
}
BENCHMARK(BM_ExposureRecovery_ItcHasNone);

void BM_FullAppSessionPerBackend(benchmark::State& state) {
  Setup();
  const char* backend = state.range(0) == 0 ? "itc" : "x11";
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open(backend);
  TextData text;
  TextView view;
  view.SetText(&text);
  ScrollBarView scrollbar;
  scrollbar.SetBody(&view);
  FrameView frame;
  frame.SetBody(&scrollbar);
  auto im = InteractionManager::Create(*ws, 400, 240, "session");
  im->SetChild(&frame);
  im->SetInputFocus(&view);
  im->RunOnce();
  WorkloadRng rng(17);
  std::vector<InputEvent> trace = GenerateEventTrace(rng, 128, 400, 240);
  for (auto _ : state) {
    for (const InputEvent& event : trace) {
      im->window()->Inject(event);
    }
    im->RunOnce();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(trace.size()));
  state.SetLabel(backend);
  view.SetText(nullptr);
}
BENCHMARK(BM_FullAppSessionPerBackend)->Arg(0)->Arg(1);

}  // namespace
}  // namespace atk

int main(int argc, char** argv) {
  atk::RegisterStandardModules();
  atk::PrintPortingSurface();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  atk_bench::JsonLineReporter reporter{"bench_wm"};
  benchmark::RunSpecifiedBenchmarks(&reporter);
  atk_bench::EmitMetricsSnapshot("bench_wm");
  benchmark::Shutdown();
  return 0;
}
