// F3/F5 — embedding scalability: redraw and event cost for compound
// documents as the number of embedded components and the nesting depth
// grow, including a faithful rebuild of snapshot 5's document.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "src/apps/standard_modules.h"
#include "src/base/interaction_manager.h"
#include "src/base/print.h"
#include "src/class_system/loader.h"
#include "src/components/table/table_data.h"
#include "src/components/text/text_view.h"
#include "src/wm/window_system.h"
#include "src/workload/workload.h"

namespace atk {
namespace {

void Setup() {
  static bool done = [] {
    RegisterStandardModules();
    for (const char* module :
         {"text", "table", "drawing", "equation", "raster", "animation"}) {
      Loader::Instance().Require(module);
    }
    return true;
  }();
  (void)done;
}

void BM_RedrawByEmbedCount(benchmark::State& state) {
  Setup();
  int embeds = static_cast<int>(state.range(0));
  WorkloadRng rng(20);
  auto doc = std::make_unique<TextData>();
  doc->SetText(GenerateProse(rng, 100));
  for (int i = 0; i < embeds; ++i) {
    int64_t pos = static_cast<int64_t>(rng.Below(static_cast<uint64_t>(doc->size())));
    switch (i % 3) {
      case 0:
        doc->InsertObject(pos, GenerateDrawing(rng, 4, 80, 50));
        break;
      case 1:
        doc->InsertObject(pos, GenerateRaster(rng, 16, 12));
        break;
      default:
        doc->InsertObject(pos, GenerateSpreadsheet(rng, 3, 3));
        break;
    }
  }
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 500, 400, "embeds");
  TextView view;
  view.SetText(doc.get());
  im->SetChild(&view);
  im->RunOnce();
  for (auto _ : state) {
    view.PostUpdate();
    im->RunOnce();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["embedded"] = embeds;
  view.SetText(nullptr);
}
BENCHMARK(BM_RedrawByEmbedCount)->Arg(0)->Arg(2)->Arg(8)->Arg(24);

// Tables nested inside table cells, `depth` levels deep.
std::unique_ptr<TextData> MakeNestedDoc(int depth) {
  WorkloadRng rng(21);
  CompoundDocumentSpec spec;
  spec.paragraphs = 2;
  spec.tables = 1;
  spec.drawings = 0;
  spec.equations = 0;
  spec.nesting_depth = depth;
  return GenerateCompoundDocument(rng, spec);
}

void BM_RedrawByNestingDepth(benchmark::State& state) {
  Setup();
  std::unique_ptr<TextData> doc = MakeNestedDoc(static_cast<int>(state.range(0)));
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 500, 400, "nesting");
  TextView view;
  view.SetText(doc.get());
  im->SetChild(&view);
  im->RunOnce();
  for (auto _ : state) {
    view.PostUpdate();
    im->RunOnce();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["depth"] = static_cast<double>(state.range(0));
  view.SetText(nullptr);
}
BENCHMARK(BM_RedrawByNestingDepth)->Arg(1)->Arg(2)->Arg(4)->Arg(6);

void BM_EventThroughNestedEmbeds(benchmark::State& state) {
  Setup();
  std::unique_ptr<TextData> doc = MakeNestedDoc(static_cast<int>(state.range(0)));
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 500, 400, "hit");
  TextView view;
  view.SetText(doc.get());
  im->SetChild(&view);
  im->RunOnce();
  // Find the deepest view to aim at.
  View* deepest = &view;
  while (!deepest->children().empty()) {
    deepest = deepest->children().front();
  }
  Point target = deepest->DeviceBounds().center();
  for (auto _ : state) {
    im->ProcessEvent(InputEvent::MouseAt(EventType::kMouseDown, target));
    im->ProcessEvent(InputEvent::MouseAt(EventType::kMouseUp, target));
  }
  state.SetItemsProcessed(state.iterations() * 2);
  state.counters["depth"] = static_cast<double>(deepest->TreeDepth());
  view.SetText(nullptr);
}
BENCHMARK(BM_EventThroughNestedEmbeds)->Arg(1)->Arg(2)->Arg(4)->Arg(6);

void BM_Snapshot5FullRedraw(benchmark::State& state) {
  Setup();
  std::unique_ptr<TextData> doc = BuildPascalCompoundDocument();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 560, 420, "snapshot 5");
  TextView view;
  view.SetText(doc.get());
  im->SetChild(&view);
  im->RunOnce();
  for (auto _ : state) {
    view.PostUpdate();
    im->RunOnce();
  }
  state.SetItemsProcessed(state.iterations());
  view.SetText(nullptr);
}
BENCHMARK(BM_Snapshot5FullRedraw);

void BM_Snapshot5AnimationTick(benchmark::State& state) {
  Setup();
  std::unique_ptr<TextData> doc = BuildPascalCompoundDocument();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 560, 420, "animate");
  TextView view;
  view.SetText(doc.get());
  im->SetChild(&view);
  im->RunOnce();
  // Reach the anim view inside the table inside the text.
  View* anim_view = nullptr;
  for (View* child : view.children().front()->children()) {
    if (child->IsA("animview")) {
      anim_view = child;
    }
  }
  for (auto _ : state) {
    // A frame advance damages only the animation cell.
    anim_view->PostUpdate();
    im->RunOnce();
  }
  state.SetItemsProcessed(state.iterations());
  view.SetText(nullptr);
}
BENCHMARK(BM_Snapshot5AnimationTick);

void BM_Snapshot5SaveLoad(benchmark::State& state) {
  Setup();
  std::unique_ptr<TextData> doc = BuildPascalCompoundDocument();
  std::string serialized = WriteDocument(*doc);
  for (auto _ : state) {
    ReadContext ctx;
    std::unique_ptr<DataObject> read = ReadDocument(serialized, &ctx);
    std::string rewritten = WriteDocument(*read);
    benchmark::DoNotOptimize(rewritten);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(serialized.size()));
}
BENCHMARK(BM_Snapshot5SaveLoad);

void BM_Snapshot5Print(benchmark::State& state) {
  Setup();
  std::unique_ptr<TextData> doc = BuildPascalCompoundDocument();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 560, 420, "print");
  TextView view;
  view.SetText(doc.get());
  im->SetChild(&view);
  im->RunOnce();
  for (auto _ : state) {
    PrintJob job(560, 420, 12);
    PrintView(view, job);
    benchmark::DoNotOptimize(job);
  }
  state.SetItemsProcessed(state.iterations());
  view.SetText(nullptr);
}
BENCHMARK(BM_Snapshot5Print);

}  // namespace
}  // namespace atk

ATK_BENCH_MAIN("bench_embedding");
