// F2/F3/F4 — the applications end to end: help (snapshot 2), messages
// reading with embedded content (snapshot 3), composing + delivering
// multi-media mail (snapshot 4), a typescript command loop, and EZ under a
// generated editing session — the workloads the 3000-user campus generated.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "src/apps/ez_app.h"
#include "src/apps/help_app.h"
#include "src/apps/messages_app.h"
#include "src/apps/standard_modules.h"
#include "src/apps/typescript_app.h"
#include "src/class_system/loader.h"
#include "src/workload/workload.h"

namespace atk {
namespace {

void Setup() {
  static bool done = [] {
    RegisterStandardModules();
    PinToolkitBase();
    for (const char* module : {"table", "drawing", "equation", "raster", "animation"}) {
      Loader::Instance().Require(module);
    }
    return true;
  }();
  (void)done;
}

void BM_HelpOpenSearchAndShow(benchmark::State& state) {
  Setup();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  for (auto _ : state) {
    HelpApp help;
    std::unique_ptr<InteractionManager> im = help.Start(*ws, {"help"});
    im->RunOnce();
    std::vector<std::string> hits = help.Search("editor");
    benchmark::DoNotOptimize(hits);
    help.ShowTopic("toolkit");
    im->RunOnce();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HelpOpenSearchAndShow);

void BM_MailFolderBrowseByMailboxSize(benchmark::State& state) {
  Setup();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  MessagesApp app;
  WorkloadRng rng(30);
  GenerateMailbox(rng, app.store(), static_cast<int>(state.range(0)), 8, 0.3);
  std::unique_ptr<InteractionManager> im = app.Start(*ws, {"messages"});
  im->RunOnce();
  int folder = 0;
  for (auto _ : state) {
    app.folder_list()->Select(folder % static_cast<int>(app.store().folders().size()));
    app.caption_list()->Select(folder % 8);
    im->RunOnce();
    ++folder;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["folders"] = static_cast<double>(app.store().folders().size());
}
BENCHMARK(BM_MailFolderBrowseByMailboxSize)->Arg(4)->Arg(16)->Arg(64);

void BM_MailOpenMessageWithEmbeds(benchmark::State& state) {
  Setup();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  MessagesApp app;
  WorkloadRng rng(31);
  GenerateMailbox(rng, app.store(), 2, 12, 1.0);  // Every body embeds media.
  std::unique_ptr<InteractionManager> im = app.Start(*ws, {"messages"});
  im->RunOnce();
  app.folder_list()->Select(2);  // First generated board.
  im->RunOnce();
  int index = 0;
  for (auto _ : state) {
    app.caption_list()->Select(index % 12);  // Parse body + build child views.
    im->RunOnce();
    ++index;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MailOpenMessageWithEmbeds);

void BM_ComposeAndDeliverMultiMedia(benchmark::State& state) {
  Setup();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  MessagesApp app;
  std::unique_ptr<InteractionManager> im = app.Start(*ws, {"messages"});
  WorkloadRng rng(32);
  for (auto _ : state) {
    auto composer = app.NewComposer();
    composer->to().SetText("palay@andrew");
    composer->subject().SetText("Big Cat");
    composer->body().SetText("Knowing your fondness for big cats...\n");
    composer->body().InsertObject(composer->body().size(), GenerateRaster(rng, 24, 16));
    bool sent = composer->Send("mail");
    benchmark::DoNotOptimize(sent);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["delivered"] = app.store().FindFolder("mail")->messages.size();
}
BENCHMARK(BM_ComposeAndDeliverMultiMedia);

void BM_TypescriptCommandLoop(benchmark::State& state) {
  Setup();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  TypescriptApp app;
  std::unique_ptr<InteractionManager> im = app.Start(*ws, {"typescript"});
  im->RunOnce();
  const char* const commands[] = {"echo benchmarking the shell", "ls", "cat readme",
                                  "whoami"};
  size_t index = 0;
  for (auto _ : state) {
    std::string out = app.view()->RunCommand(commands[index % 4]);
    benchmark::DoNotOptimize(out);
    im->RunOnce();
    ++index;
    if (app.transcript()->size() > 100000) {
      state.PauseTiming();
      app.transcript()->DeleteRange(0, app.transcript()->size() - 100);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TypescriptCommandLoop);

void BM_EzEditingSessionTrace(benchmark::State& state) {
  Setup();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  EzApp ez;
  std::unique_ptr<InteractionManager> im = ez.Start(*ws, {"ez"});
  WorkloadRng rng(33);
  std::unique_ptr<TextData> doc = GenerateCompoundDocument(rng, CompoundDocumentSpec{});
  ez.LoadDocumentString(WriteDocument(*doc));
  im->RunOnce();
  std::vector<InputEvent> trace = GenerateEventTrace(rng, 64, 560, 400, 0.6);
  for (auto _ : state) {
    for (const InputEvent& event : trace) {
      im->ProcessEvent(event);
    }
    im->RunOnce();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_EzEditingSessionTrace);

void BM_EzOpenCompoundDocument(benchmark::State& state) {
  Setup();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  WorkloadRng rng(34);
  CompoundDocumentSpec spec;
  spec.paragraphs = 12;
  spec.tables = 2;
  spec.drawings = 2;
  spec.rasters = 1;
  std::unique_ptr<TextData> doc = GenerateCompoundDocument(rng, spec);
  std::string serialized = WriteDocument(*doc);
  EzApp ez;
  std::unique_ptr<InteractionManager> im = ez.Start(*ws, {"ez"});
  for (auto _ : state) {
    ez.LoadDocumentString(serialized);  // Parse + rebuild child views.
    im->RunOnce();
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(serialized.size()));
}
BENCHMARK(BM_EzOpenCompoundDocument);

}  // namespace
}  // namespace atk

ATK_BENCH_MAIN("bench_apps");
