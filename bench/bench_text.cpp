// E5 — the text component under editing load: gap-buffer primitives, insert
// and delete at the caret, layout and redraw as documents grow, style-run
// maintenance, and both view types (semi-WYSIWYG and paged) over one buffer
// — the editor that displaced emacs at the ITC (§9).

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "src/apps/standard_modules.h"
#include "src/base/interaction_manager.h"
#include "src/class_system/loader.h"
#include "src/components/text/gap_buffer.h"
#include "src/components/text/paged_text_view.h"
#include "src/components/text/text_view.h"
#include "src/wm/window_system.h"
#include "src/workload/workload.h"

namespace atk {
namespace {

void Setup() {
  static bool done = [] {
    RegisterStandardModules();
    Loader::Instance().Require("text");
    return true;
  }();
  (void)done;
}

void BM_GapBufferLocalInsert(benchmark::State& state) {
  GapBuffer buffer;
  int64_t pos = 0;
  for (auto _ : state) {
    buffer.Insert(pos, "x");
    ++pos;
    if (pos > 1 << 20) {
      state.PauseTiming();
      buffer.Delete(0, pos);
      pos = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GapBufferLocalInsert);

void BM_GapBufferRandomInsert(benchmark::State& state) {
  GapBuffer buffer;
  buffer.Insert(0, std::string(1 << 16, 'a'));
  uint64_t seed = 5;
  for (auto _ : state) {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    buffer.Insert(static_cast<int64_t>(seed % static_cast<uint64_t>(buffer.size())), "x");
    if (buffer.size() > (1 << 20)) {
      state.PauseTiming();
      buffer.Delete(1 << 16, buffer.size() - (1 << 16));
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GapBufferRandomInsert);

void BM_TypingIntoViewByDocSize(benchmark::State& state) {
  Setup();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 400, 300, "typing");
  TextData text;
  WorkloadRng rng(2);
  text.SetText(GenerateProse(rng, static_cast<int>(state.range(0))));
  TextView view;
  view.SetText(&text);
  im->SetChild(&view);
  im->SetInputFocus(&view);
  im->RunOnce();
  view.SetDot(text.size() / 2);
  for (auto _ : state) {
    // Keystroke -> data change -> notify -> relayout -> clipped repaint.
    im->ProcessEvent(InputEvent::KeyPress('q'));
    im->RunOnce();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["doc_chars"] = static_cast<double>(text.size());
  state.counters["layouts"] = static_cast<double>(view.layout_count());
  view.SetText(nullptr);
}
BENCHMARK(BM_TypingIntoViewByDocSize)->Arg(50)->Arg(500)->Arg(5000)->Arg(20000);

void BM_LayoutOnlyByDocSize(benchmark::State& state) {
  Setup();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 400, 300, "layout");
  TextData text;
  WorkloadRng rng(2);
  std::unique_ptr<TextData> doc = GenerateDocument(rng, static_cast<int>(state.range(0)));
  TextView view;
  view.SetText(doc.get());
  im->SetChild(&view);
  im->RunOnce();
  for (auto _ : state) {
    view.Layout();  // Marks dirty...
    im->RunOnce();  // ...and re-lays-out + repaints once.
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["paragraphs"] = static_cast<double>(state.range(0));
  view.SetText(nullptr);
  (void)text;
}
BENCHMARK(BM_LayoutOnlyByDocSize)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_StyleRunMaintenance(benchmark::State& state) {
  Setup();
  TextData text;
  WorkloadRng rng(4);
  text.SetText(GenerateProse(rng, 2000));
  uint64_t seed = 77;
  for (auto _ : state) {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    int64_t pos = static_cast<int64_t>(seed % static_cast<uint64_t>(text.size() - 40));
    text.ApplyStyle(pos, 24, (seed & 1) != 0 ? "bold" : "italic");
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["final_runs"] = static_cast<double>(text.style_runs().size());
}
BENCHMARK(BM_StyleRunMaintenance);

void BM_ScrollThroughLongDocument(benchmark::State& state) {
  Setup();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 400, 300, "scroll");
  WorkloadRng rng(6);
  std::unique_ptr<TextData> doc = GenerateDocument(rng, 128);
  TextView view;
  view.SetText(doc.get());
  im->SetChild(&view);
  im->RunOnce();
  int64_t line = 0;
  int64_t total = doc->LineCount();
  for (auto _ : state) {
    line = (line + 7) % total;
    view.ScrollToUnit(line);
    im->RunOnce();
  }
  state.SetItemsProcessed(state.iterations());
  view.SetText(nullptr);
}
BENCHMARK(BM_ScrollThroughLongDocument);

void BM_BothViewTypesOneBuffer(benchmark::State& state) {
  Setup();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto editor_im = InteractionManager::Create(*ws, 300, 200, "editor");
  auto page_im = InteractionManager::Create(*ws, 300, 260, "page");
  TextData shared;
  WorkloadRng rng(8);
  shared.SetText(GenerateProse(rng, 400));
  TextView editor;
  PagedTextView page;
  editor.SetText(&shared);
  page.SetText(&shared);
  editor_im->SetChild(&editor);
  page_im->SetChild(&page);
  editor_im->RunOnce();
  page_im->RunOnce();
  for (auto _ : state) {
    editor.SetDot(shared.size() / 2);
    editor.SelfInsert('z');
    editor_im->RunOnce();
    page_im->RunOnce();  // Both windows repaint from the one change.
  }
  state.SetItemsProcessed(state.iterations());
  editor.SetText(nullptr);
  page.SetText(nullptr);
}
BENCHMARK(BM_BothViewTypesOneBuffer);

void BM_EmacsStyleCommandMix(benchmark::State& state) {
  Setup();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 400, 300, "commands");
  TextData text;
  WorkloadRng rng(9);
  text.SetText(GenerateProse(rng, 1000));
  TextView view;
  view.SetText(&text);
  im->SetChild(&view);
  im->SetInputFocus(&view);
  im->RunOnce();
  const char commands[] = {Ctl('f'), Ctl('f'), Ctl('n'), 'a',      Ctl('b'),
                           Ctl('d'), Ctl('e'), Ctl('a'), Ctl('p'), 'b'};
  size_t index = 0;
  for (auto _ : state) {
    im->ProcessEvent(InputEvent::KeyPress(commands[index % sizeof(commands)]));
    ++index;
    im->RunOnce();
  }
  state.SetItemsProcessed(state.iterations());
  view.SetText(nullptr);
}
BENCHMARK(BM_EmacsStyleCommandMix);

}  // namespace
}  // namespace atk

ATK_BENCH_MAIN("bench_text");
