#!/bin/sh
# Perf-regression guard for the region storm (ctest label "perf").
#
#   bench/check_perf.sh [BUILD_DIR] [BASELINE]
#
# Runs the banded thousand-rect storm from bench_update and fails when it is
# more than 20% slower than the checked-in baseline (bench/perf_baseline.json,
# derived from BENCH_RESULTS.json on the recording machine).  Benchmarks are
# noisy on loaded machines, so up to 3 attempts are made and any single run
# within the limit passes.  ATK_SKIP_PERF=1 skips (exit 77, ctest's
# SKIP_RETURN_CODE).
set -eu

if [ "${ATK_SKIP_PERF:-0}" = "1" ]; then
  echo "check_perf.sh: ATK_SKIP_PERF=1, skipping perf guard" >&2
  exit 77
fi

BUILD_DIR="${1:-build}"
BASELINE="${2:-$(dirname "$0")/perf_baseline.json}"
METRIC="BM_RegionStorm_Banded/1000"
BIN="$BUILD_DIR/bench/bench_update"

if [ ! -x "$BIN" ]; then
  echo "check_perf.sh: missing bench binary $BIN (build the project first)" >&2
  exit 1
fi
if [ ! -f "$BASELINE" ]; then
  echo "check_perf.sh: missing baseline $BASELINE" >&2
  exit 1
fi

base_ns="$(grep -o '"value_ns"[[:space:]]*:[[:space:]]*[0-9.eE+-]*' "$BASELINE" \
  | head -1 | sed 's/.*://; s/[[:space:]]//g')"
if [ -z "$base_ns" ]; then
  echo "check_perf.sh: no value_ns in $BASELINE" >&2
  exit 1
fi
limit_ns="$(awk -v b="$base_ns" 'BEGIN { printf "%.0f", b * 1.2 }')"

attempt=1
while [ "$attempt" -le 3 ]; do
  line="$("$BIN" --benchmark_filter="^${METRIC}\$" --benchmark_min_time=0.05 \
      --benchmark_color=false | grep -o '{"bench":.*}' | head -1 || true)"
  value="$(printf '%s\n' "$line" \
    | grep -o '"value":[0-9.eE+-]*' | head -1 | cut -d: -f2)"
  if [ -z "$value" ]; then
    echo "check_perf.sh: attempt $attempt produced no measurement for $METRIC" >&2
    attempt=$((attempt + 1))
    continue
  fi
  echo "check_perf.sh: attempt $attempt: $METRIC = ${value} ns (limit ${limit_ns} ns," \
    "baseline ${base_ns} ns)" >&2
  if awk -v v="$value" -v lim="$limit_ns" 'BEGIN { exit !(v <= lim) }'; then
    echo "check_perf.sh: PASS" >&2
    exit 0
  fi
  attempt=$((attempt + 1))
done

echo "check_perf.sh: FAIL: $METRIC regressed >20% vs baseline after 3 attempts" >&2
exit 1
