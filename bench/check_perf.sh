#!/bin/sh
# Perf-regression guard (ctest label "perf").
#
#   bench/check_perf.sh [BUILD_DIR] [BASELINE]
#
# Replays every metric listed in bench/perf_baseline.json (one line per
# entry: metric name, bench binary, reference value_ns derived from
# BENCH_RESULTS.json on the recording machine) and fails when a metric is
# more than 20% slower than its baseline.  Benchmarks are noisy on loaded
# machines, so up to 3 attempts are made per metric and any single run
# within the limit passes.
#
# On top of the absolute limits, ratios are pinned:
#   - the zero-copy read path (BM_ReadDocumentBySize/256) must stay at least
#     3x faster than the frozen copying lexer
#     (BM_ReadDocumentBySize_Baseline/256) measured in the same session —
#     the PR-5 acceptance floor;
#   - the per-edit fan-out p99 with tracing enabled
#     (gauge/server.bench.fanout_traced_p99_us) must stay within +3% of the
#     untraced p99 measured in the same session, and the traced run must
#     close its edit flows with a sane end-to-end propagation p99
#     (histogram/server.propagation.latency_us/p99) — the PR-7 tracing
#     overhead bound.  The disabled path is a single branch, so the plain
#     BM_EditFanOut entry doubles as the 0%-when-disabled guard;
#   - the memory accountant (PR 9) must cost at most 2%: the accounted
#     document read (BM_ReadDocumentBySize/256) and edit fan-out
#     (BM_EditFanOut/256) are each held within 1.02x of their _Unaccounted
#     twins measured in the same session.
#
# The PR-9 byte gates ride on the `rates` mechanism: the accounted runs
# publish gauge/datastream.bench.doc_peak_bytes (peak accounted bytes one
# 256-paragraph decode adds) and gauge/server.bench.session_peak_bytes
# (peak fleet bytes per session over the fan-out run); the baseline floors
# them (accounting must actually be on) and caps them (a pool that stops
# releasing shows up as a ceiling breach, not a slow drift).
#
# The baseline's `rates` entries gate the scenario suite (bench_scenarios):
# each names a gauge from the metrics snapshot, the bench filter that
# populates it, and a `min` (throughput floor: lines/sec ingested, docs/sec
# round-tripped) or `max` (latency ceiling: replay fan-out p99).  The
# recorded bounds already carry loaded-machine headroom, so they are applied
# without extra slack — with the usual 3 attempts.
#
# ATK_SKIP_PERF=1 skips (exit 77, ctest's SKIP_RETURN_CODE).
set -eu

if [ "${ATK_SKIP_PERF:-0}" = "1" ]; then
  echo "check_perf.sh: ATK_SKIP_PERF=1, skipping perf guard" >&2
  exit 77
fi

BUILD_DIR="${1:-build}"
BASELINE="${2:-$(dirname "$0")/perf_baseline.json}"

if [ ! -f "$BASELINE" ]; then
  echo "check_perf.sh: missing baseline $BASELINE" >&2
  exit 1
fi

# Runs one benchmark and prints its value_ns (empty on failure to measure).
measure() {
  bin="$1"
  metric="$2"
  "$bin" --benchmark_filter="^${metric}\$" \
      --benchmark_min_time=0.05 --benchmark_color=false 2>/dev/null \
    | grep -o '{"bench":.*}' \
    | grep -F "\"metric\":\"$metric\"" \
    | head -1 \
    | grep -o '"value":[0-9.eE+-]*' | head -1 | cut -d: -f2
}

# Runs the bench filtered to `filter` and prints the value of a named gauge
# from the end-of-run metrics snapshot (empty on failure to measure).
measure_gauge() {
  bin="$1"
  filter="$2"
  gauge_name="$3"
  "$bin" --benchmark_filter="^${filter}\$" \
      --benchmark_min_time=0.05 --benchmark_color=false 2>/dev/null \
    | grep -o '{"bench":.*}' \
    | grep -F "\"metric\":\"gauge/$gauge_name\"" \
    | head -1 \
    | grep -o '"value":[0-9.eE+-]*' | head -1 | cut -d: -f2
}

# One scenario gauge against its recorded floor (min) or ceiling (max).
check_rate() {
  gauge_name="$1"
  bench="$2"
  filter="$3"
  min="$4"
  max="$5"
  bin="$BUILD_DIR/bench/$bench"
  if [ ! -x "$bin" ]; then
    echo "check_perf.sh: missing bench binary $bin (build the project first)" >&2
    return 1
  fi
  attempt=1
  while [ "$attempt" -le 3 ]; do
    value="$(measure_gauge "$bin" "$filter" "$gauge_name")"
    if [ -z "$value" ]; then
      echo "check_perf.sh: attempt $attempt produced no measurement for gauge $gauge_name" >&2
      attempt=$((attempt + 1))
      continue
    fi
    bound="$([ -n "$min" ] && echo "min $min" || echo "max $max")"
    echo "check_perf.sh: attempt $attempt: gauge/$gauge_name = ${value} (need $bound)" >&2
    if [ -n "$min" ]; then
      if awk -v v="$value" -v lim="$min" 'BEGIN { exit !(v >= lim) }'; then
        return 0
      fi
    elif awk -v v="$value" -v lim="$max" 'BEGIN { exit !(v <= lim) }'; then
      return 0
    fi
    attempt=$((attempt + 1))
  done
  echo "check_perf.sh: FAIL: gauge/$gauge_name out of bounds after 3 attempts" >&2
  return 1
}

# One metric against its absolute baseline, with retries.
check_metric() {
  metric="$1"
  bench="$2"
  base_ns="$3"
  bin="$BUILD_DIR/bench/$bench"
  if [ ! -x "$bin" ]; then
    echo "check_perf.sh: missing bench binary $bin (build the project first)" >&2
    return 1
  fi
  limit_ns="$(awk -v b="$base_ns" 'BEGIN { printf "%.0f", b * 1.2 }')"
  attempt=1
  while [ "$attempt" -le 3 ]; do
    value="$(measure "$bin" "$metric")"
    if [ -z "$value" ]; then
      echo "check_perf.sh: attempt $attempt produced no measurement for $metric" >&2
      attempt=$((attempt + 1))
      continue
    fi
    echo "check_perf.sh: attempt $attempt: $metric = ${value} ns (limit ${limit_ns} ns," \
      "baseline ${base_ns} ns)" >&2
    if awk -v v="$value" -v lim="$limit_ns" 'BEGIN { exit !(v <= lim) }'; then
      return 0
    fi
    attempt=$((attempt + 1))
  done
  echo "check_perf.sh: FAIL: $metric regressed >20% vs baseline after 3 attempts" >&2
  return 1
}

failures=0
# Baseline entries are one per line: pull metric/bench/value_ns with sed so
# the guard has no dependency beyond POSIX sh + awk.
while IFS= read -r line; do
  case "$line" in
    *'"metric"'*) ;;
    *) continue ;;
  esac
  metric="$(printf '%s\n' "$line" | sed 's/.*"metric"[[:space:]]*:[[:space:]]*"\([^"]*\)".*/\1/')"
  bench="$(printf '%s\n' "$line" | sed 's/.*"bench"[[:space:]]*:[[:space:]]*"\([^"]*\)".*/\1/')"
  base_ns="$(printf '%s\n' "$line" | sed 's/.*"value_ns"[[:space:]]*:[[:space:]]*\([0-9.eE+-]*\).*/\1/')"
  if [ -z "$metric" ] || [ -z "$bench" ] || [ -z "$base_ns" ]; then
    echo "check_perf.sh: malformed baseline entry: $line" >&2
    failures=$((failures + 1))
    continue
  fi
  check_metric "$metric" "$bench" "$base_ns" || failures=$((failures + 1))
done < "$BASELINE"

# Scenario-suite rate gates: one `rates` entry per line, each naming a gauge
# plus the benchmark filter that populates it and a min or max bound.
while IFS= read -r line; do
  case "$line" in
    *'"gauge"'*) ;;
    *) continue ;;
  esac
  gauge_name="$(printf '%s\n' "$line" | sed 's/.*"gauge"[[:space:]]*:[[:space:]]*"\([^"]*\)".*/\1/')"
  bench="$(printf '%s\n' "$line" | sed 's/.*"bench"[[:space:]]*:[[:space:]]*"\([^"]*\)".*/\1/')"
  filter="$(printf '%s\n' "$line" | sed 's/.*"filter"[[:space:]]*:[[:space:]]*"\([^"]*\)".*/\1/')"
  min="$(printf '%s\n' "$line" | sed -n 's/.*"min"[[:space:]]*:[[:space:]]*\([0-9.eE+-]*\).*/\1/p')"
  max="$(printf '%s\n' "$line" | sed -n 's/.*"max"[[:space:]]*:[[:space:]]*\([0-9.eE+-]*\).*/\1/p')"
  if [ -z "$gauge_name" ] || [ -z "$bench" ] || [ -z "$filter" ] ||
     { [ -z "$min" ] && [ -z "$max" ]; }; then
    echo "check_perf.sh: malformed rates entry: $line" >&2
    failures=$((failures + 1))
    continue
  fi
  check_rate "$gauge_name" "$bench" "$filter" "$min" "$max" || failures=$((failures + 1))
done < "$BASELINE"

# The PR-5 speedup floor: zero-copy read >= 3x the frozen copying lexer.
DS_BIN="$BUILD_DIR/bench/bench_datastream"
if [ -x "$DS_BIN" ]; then
  ratio_ok=0
  attempt=1
  while [ "$attempt" -le 3 ]; do
    new_ns="$(measure "$DS_BIN" "BM_ReadDocumentBySize/256")"
    old_ns="$(measure "$DS_BIN" "BM_ReadDocumentBySize_Baseline/256")"
    if [ -n "$new_ns" ] && [ -n "$old_ns" ]; then
      ratio="$(awk -v o="$old_ns" -v n="$new_ns" 'BEGIN { printf "%.2f", o / n }')"
      echo "check_perf.sh: attempt $attempt: read speedup ${ratio}x" \
        "(zero-copy ${new_ns} ns vs copying baseline ${old_ns} ns, need >= 3x)" >&2
      if awk -v o="$old_ns" -v n="$new_ns" 'BEGIN { exit !(o >= 3 * n) }'; then
        ratio_ok=1
        break
      fi
    else
      echo "check_perf.sh: attempt $attempt could not measure the read speedup" >&2
    fi
    attempt=$((attempt + 1))
  done
  if [ "$ratio_ok" != "1" ]; then
    echo "check_perf.sh: FAIL: zero-copy read under 3x the copying baseline after 3 attempts" >&2
    failures=$((failures + 1))
  fi
else
  echo "check_perf.sh: missing bench binary $DS_BIN (build the project first)" >&2
  failures=$((failures + 1))
fi

# The PR-7 tracing bound: one session runs the untraced and the traced
# fan-out loops back to back; the traced per-edit p99 must stay within +3%
# of the untraced one, and the traced loop must have closed its edit flows
# into the end-to-end propagation histogram with a sane p99 (the idle
# measurement is ~0.5-1 ms; 20 ms leaves loaded-machine headroom).
SV_BIN="$BUILD_DIR/bench/bench_server"
if [ -x "$SV_BIN" ]; then
  trace_ok=0
  attempt=1
  while [ "$attempt" -le 3 ]; do
    out="$("$SV_BIN" --benchmark_filter='^BM_EditFanOut(_Traced)?/256$' \
        --benchmark_min_time=0.05 --benchmark_color=false 2>/dev/null \
      | grep -o '{"bench":.*}')" || out=""
    plain_us="$(printf '%s\n' "$out" \
      | grep -F '"metric":"gauge/server.bench.fanout_p99_us"' | head -1 \
      | grep -o '"value":[0-9.eE+-]*' | cut -d: -f2)"
    traced_us="$(printf '%s\n' "$out" \
      | grep -F '"metric":"gauge/server.bench.fanout_traced_p99_us"' | head -1 \
      | grep -o '"value":[0-9.eE+-]*' | cut -d: -f2)"
    prop_us="$(printf '%s\n' "$out" \
      | grep -F '"metric":"histogram/server.propagation.latency_us/p99"' | head -1 \
      | grep -o '"value":[0-9.eE+-]*' | cut -d: -f2)"
    if [ -n "$plain_us" ] && [ -n "$traced_us" ] && [ -n "$prop_us" ]; then
      echo "check_perf.sh: attempt $attempt: fan-out p99 ${plain_us} us untraced," \
        "${traced_us} us traced (need <= 1.03x), propagation p99 ${prop_us} us" \
        "(need 0 < p99 <= 20000 us)" >&2
      if awk -v p="$plain_us" -v t="$traced_us" -v e="$prop_us" \
          'BEGIN { exit !(t <= p * 1.03 && e > 0 && e <= 20000) }'; then
        trace_ok=1
        break
      fi
    else
      echo "check_perf.sh: attempt $attempt could not measure the tracing overhead" >&2
    fi
    attempt=$((attempt + 1))
  done
  if [ "$trace_ok" != "1" ]; then
    echo "check_perf.sh: FAIL: traced fan-out p99 above 1.03x untraced (or flows" \
      "did not close) after 3 attempts" >&2
    failures=$((failures + 1))
  fi
else
  echo "check_perf.sh: missing bench binary $SV_BIN (build the project first)" >&2
  failures=$((failures + 1))
fi

# The PR-9 accountant overhead bound: the accounted loop and its
# _Unaccounted twin run back to back in one process; the accounted time must
# stay within 1.02x of the unaccounted one.
check_accounting_overhead() {
  bin="$1"
  accounted="$2"
  unaccounted="$3"
  if [ ! -x "$bin" ]; then
    echo "check_perf.sh: missing bench binary $bin (build the project first)" >&2
    return 1
  fi
  attempt=1
  while [ "$attempt" -le 3 ]; do
    out="$("$bin" --benchmark_filter="^($accounted|$unaccounted)\$" \
        --benchmark_min_time=0.05 --benchmark_color=false 2>/dev/null \
      | grep -o '{"bench":.*}')" || out=""
    on_ns="$(printf '%s\n' "$out" \
      | grep -F "\"metric\":\"$accounted\"" | head -1 \
      | grep -o '"value":[0-9.eE+-]*' | cut -d: -f2)"
    off_ns="$(printf '%s\n' "$out" \
      | grep -F "\"metric\":\"$unaccounted\"" | head -1 \
      | grep -o '"value":[0-9.eE+-]*' | cut -d: -f2)"
    if [ -n "$on_ns" ] && [ -n "$off_ns" ]; then
      echo "check_perf.sh: attempt $attempt: $accounted = ${on_ns} ns accounted," \
        "${off_ns} ns unaccounted (need <= 1.02x)" >&2
      if awk -v on="$on_ns" -v off="$off_ns" 'BEGIN { exit !(on <= off * 1.02) }'; then
        return 0
      fi
    else
      echo "check_perf.sh: attempt $attempt could not measure the accounting overhead" >&2
    fi
    attempt=$((attempt + 1))
  done
  echo "check_perf.sh: FAIL: $accounted above 1.02x its unaccounted twin after 3 attempts" >&2
  return 1
}

check_accounting_overhead "$DS_BIN" \
  "BM_ReadDocumentBySize/256" "BM_ReadDocumentBySize_Unaccounted/256" \
  || failures=$((failures + 1))
check_accounting_overhead "$SV_BIN" \
  "BM_EditFanOut/256" "BM_EditFanOut_Unaccounted/256" \
  || failures=$((failures + 1))

if [ "$failures" -gt 0 ]; then
  echo "check_perf.sh: FAIL: $failures metric(s) out of bounds" >&2
  exit 1
fi
echo "check_perf.sh: PASS" >&2
exit 0
