#!/bin/sh
# Perf-regression guard (ctest label "perf").
#
#   bench/check_perf.sh [BUILD_DIR] [BASELINE]
#
# Replays every metric listed in bench/perf_baseline.json (one line per
# entry: metric name, bench binary, reference value_ns derived from
# BENCH_RESULTS.json on the recording machine) and fails when a metric is
# more than 20% slower than its baseline.  Benchmarks are noisy on loaded
# machines, so up to 3 attempts are made per metric and any single run
# within the limit passes.
#
# On top of the absolute limits, one ratio is pinned: the zero-copy read
# path (BM_ReadDocumentBySize/256) must stay at least 3x faster than the
# frozen copying lexer (BM_ReadDocumentBySize_Baseline/256) measured in the
# same session — the PR-5 acceptance floor.
#
# ATK_SKIP_PERF=1 skips (exit 77, ctest's SKIP_RETURN_CODE).
set -eu

if [ "${ATK_SKIP_PERF:-0}" = "1" ]; then
  echo "check_perf.sh: ATK_SKIP_PERF=1, skipping perf guard" >&2
  exit 77
fi

BUILD_DIR="${1:-build}"
BASELINE="${2:-$(dirname "$0")/perf_baseline.json}"

if [ ! -f "$BASELINE" ]; then
  echo "check_perf.sh: missing baseline $BASELINE" >&2
  exit 1
fi

# Runs one benchmark and prints its value_ns (empty on failure to measure).
measure() {
  bin="$1"
  metric="$2"
  "$bin" --benchmark_filter="^${metric}\$" \
      --benchmark_min_time=0.05 --benchmark_color=false 2>/dev/null \
    | grep -o '{"bench":.*}' \
    | grep -F "\"metric\":\"$metric\"" \
    | head -1 \
    | grep -o '"value":[0-9.eE+-]*' | head -1 | cut -d: -f2
}

# One metric against its absolute baseline, with retries.
check_metric() {
  metric="$1"
  bench="$2"
  base_ns="$3"
  bin="$BUILD_DIR/bench/$bench"
  if [ ! -x "$bin" ]; then
    echo "check_perf.sh: missing bench binary $bin (build the project first)" >&2
    return 1
  fi
  limit_ns="$(awk -v b="$base_ns" 'BEGIN { printf "%.0f", b * 1.2 }')"
  attempt=1
  while [ "$attempt" -le 3 ]; do
    value="$(measure "$bin" "$metric")"
    if [ -z "$value" ]; then
      echo "check_perf.sh: attempt $attempt produced no measurement for $metric" >&2
      attempt=$((attempt + 1))
      continue
    fi
    echo "check_perf.sh: attempt $attempt: $metric = ${value} ns (limit ${limit_ns} ns," \
      "baseline ${base_ns} ns)" >&2
    if awk -v v="$value" -v lim="$limit_ns" 'BEGIN { exit !(v <= lim) }'; then
      return 0
    fi
    attempt=$((attempt + 1))
  done
  echo "check_perf.sh: FAIL: $metric regressed >20% vs baseline after 3 attempts" >&2
  return 1
}

failures=0
# Baseline entries are one per line: pull metric/bench/value_ns with sed so
# the guard has no dependency beyond POSIX sh + awk.
while IFS= read -r line; do
  case "$line" in
    *'"metric"'*) ;;
    *) continue ;;
  esac
  metric="$(printf '%s\n' "$line" | sed 's/.*"metric"[[:space:]]*:[[:space:]]*"\([^"]*\)".*/\1/')"
  bench="$(printf '%s\n' "$line" | sed 's/.*"bench"[[:space:]]*:[[:space:]]*"\([^"]*\)".*/\1/')"
  base_ns="$(printf '%s\n' "$line" | sed 's/.*"value_ns"[[:space:]]*:[[:space:]]*\([0-9.eE+-]*\).*/\1/')"
  if [ -z "$metric" ] || [ -z "$bench" ] || [ -z "$base_ns" ]; then
    echo "check_perf.sh: malformed baseline entry: $line" >&2
    failures=$((failures + 1))
    continue
  fi
  check_metric "$metric" "$bench" "$base_ns" || failures=$((failures + 1))
done < "$BASELINE"

# The PR-5 speedup floor: zero-copy read >= 3x the frozen copying lexer.
DS_BIN="$BUILD_DIR/bench/bench_datastream"
if [ -x "$DS_BIN" ]; then
  ratio_ok=0
  attempt=1
  while [ "$attempt" -le 3 ]; do
    new_ns="$(measure "$DS_BIN" "BM_ReadDocumentBySize/256")"
    old_ns="$(measure "$DS_BIN" "BM_ReadDocumentBySize_Baseline/256")"
    if [ -n "$new_ns" ] && [ -n "$old_ns" ]; then
      ratio="$(awk -v o="$old_ns" -v n="$new_ns" 'BEGIN { printf "%.2f", o / n }')"
      echo "check_perf.sh: attempt $attempt: read speedup ${ratio}x" \
        "(zero-copy ${new_ns} ns vs copying baseline ${old_ns} ns, need >= 3x)" >&2
      if awk -v o="$old_ns" -v n="$new_ns" 'BEGIN { exit !(o >= 3 * n) }'; then
        ratio_ok=1
        break
      fi
    else
      echo "check_perf.sh: attempt $attempt could not measure the read speedup" >&2
    fi
    attempt=$((attempt + 1))
  done
  if [ "$ratio_ok" != "1" ]; then
    echo "check_perf.sh: FAIL: zero-copy read under 3x the copying baseline after 3 attempts" >&2
    failures=$((failures + 1))
  fi
else
  echo "check_perf.sh: missing bench binary $DS_BIN (build the project first)" >&2
  failures=$((failures + 1))
fi

if [ "$failures" -gt 0 ]; then
  echo "check_perf.sh: FAIL: $failures metric(s) out of bounds" >&2
  exit 1
fi
echo "check_perf.sh: PASS" >&2
exit 0
