#!/bin/sh
# Runs every bench binary and aggregates their JSON lines (emitted by the
# JsonLineReporter in bench/bench_json.h) into one JSON array.
#
#   bench/run_all.sh [BUILD_DIR] [OUTPUT]
#
# BUILD_DIR defaults to "build", OUTPUT to "BENCH_RESULTS.json".  Uses a
# small --benchmark_min_time so the full sweep finishes in seconds; pass
# ATK_BENCH_MIN_TIME=0.5 (or similar) for steadier numbers.
set -eu

BUILD_DIR="${1:-build}"
OUTPUT="${2:-BENCH_RESULTS.json}"
MIN_TIME="${ATK_BENCH_MIN_TIME:-0.01}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "run_all.sh: no $BUILD_DIR/bench directory (build the project first)" >&2
  exit 1
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

status=0
for bin in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  echo "== $name" >&2
  before="$(wc -l < "$tmp")"
  # Console table goes to stderr-visible log; JSON lines are extracted from
  # stdout (benchmark's color codes may prefix them, hence grep -o).
  if ! "$bin" --benchmark_min_time="$MIN_TIME" --benchmark_color=false \
      | grep -o '{"bench":.*}' >> "$tmp"; then
    echo "run_all.sh: $name produced no JSON lines" >&2
    status=1
  fi
  after="$(wc -l < "$tmp")"
  if [ "$after" -eq "$before" ]; then
    echo "run_all.sh: $name contributed no measurements" >&2
    status=1
  fi
done

if [ ! -s "$tmp" ]; then
  echo "run_all.sh: no measurements collected" >&2
  exit 1
fi

{
  echo '['
  sed '$!s/$/,/' "$tmp"
  echo ']'
} > "$OUTPUT"

echo "wrote $(wc -l < "$tmp") measurements to $OUTPUT" >&2
exit "$status"
