#!/bin/sh
# Runs every bench binary and aggregates their JSON lines (emitted by the
# JsonLineReporter in bench/bench_json.h) into one JSON array.
#
#   bench/run_all.sh [BUILD_DIR] [OUTPUT]
#
# BUILD_DIR defaults to "build", OUTPUT to "BENCH_RESULTS.json".  Uses a
# small --benchmark_min_time so the full sweep finishes in seconds; pass
# ATK_BENCH_MIN_TIME=0.5 (or similar) for steadier numbers.
#
# Exits non-zero when a bench binary is missing (expected set = the
# bench_*.cpp sources next to this script), crashes, reports errored
# benchmarks (non-zero exit from ATK_BENCH_MAIN), or contributes timing
# lines without a metrics snapshot (or vice versa) — a silent or partial
# hole in BENCH_RESULTS.json is a failure, and the summary at the end names
# every wedged binary and why.
#
# Every binary's snapshot carries gauge/proc.mem.vmhwm_bytes — the kernel's
# peak-RSS figure (VmHWM) read by metric_lines.h — so BENCH_RESULTS.json
# records the external memory envelope next to the accountant's own byte
# gauges.  On procfs platforms a snapshot without it is treated as wedged.
set -eu

BUILD_DIR="${1:-build}"
OUTPUT="${2:-BENCH_RESULTS.json}"
MIN_TIME="${ATK_BENCH_MIN_TIME:-0.01}"
SRC_DIR="$(dirname "$0")"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "run_all.sh: no $BUILD_DIR/bench directory (build the project first)" >&2
  exit 1
fi

tmp="$(mktemp)"
raw="$(mktemp)"
failed="$(mktemp)"
trap 'rm -f "$tmp" "$raw" "$failed"' EXIT

# Records one bench failure for the end-of-run summary.
fail() {
  printf '%s: %s\n' "$1" "$2" >> "$failed"
  echo "run_all.sh: $1: $2" >&2
}

for src in "$SRC_DIR"/bench_*.cpp; do
  name="$(basename "$src" .cpp)"
  bin="$BUILD_DIR/bench/$name"
  if [ ! -x "$bin" ]; then
    fail "$name" "missing binary $bin"
    continue
  fi
  echo "== $name" >&2
  # Run the binary first so its real exit status is observed (a pipeline
  # would report grep's status instead and mask a crash).  A non-zero exit
  # also covers errored benchmarks: ATK_BENCH_MAIN fails the binary when any
  # benchmark errored, so a partially-wedged bench cannot pass on the JSON
  # lines its surviving siblings emitted.
  bench_ok=1
  if ! "$bin" --benchmark_min_time="$MIN_TIME" --benchmark_color=false > "$raw"; then
    fail "$name" "exited non-zero (crashed or benchmarks errored)"
    bench_ok=0
  fi
  # Console table goes to stderr-visible log; JSON lines are extracted from
  # stdout (benchmark's color codes may prefix them, hence grep -o).
  lines="$(grep -o '{"bench":.*}' "$raw" || true)"
  # Timing lines vs the end-of-run metrics snapshot (counter/gauge/histogram
  # namespaces, emitted by EmitMetricsSnapshot): a binary must contribute at
  # least one of each — no timings means the benchmark ran nothing, no
  # metrics means the snapshot plumbing broke mid-flight (timing lines with
  # no snapshot is exactly the partially-wedged shape).
  timings="$(printf '%s\n' "$lines" | grep -c '"metric":"BM_' || true)"
  metrics="$(printf '%s\n' "$lines" \
    | grep -c '"metric":"\(counter\|gauge\|histogram\)/' || true)"
  if [ "$timings" -eq 0 ]; then
    fail "$name" "contributed no timed measurements"
    bench_ok=0
  fi
  if [ "$metrics" -eq 0 ]; then
    if [ "$timings" -gt 0 ]; then
      fail "$name" "emitted $timings timing line(s) but no metrics snapshot (wedged after the timed runs)"
    else
      fail "$name" "contributed no metrics snapshot"
    fi
    bench_ok=0
  fi
  # Peak RSS rides with every snapshot on procfs platforms; a binary that
  # lost it broke the metric_lines.h emitter, not just one gauge.
  if [ -r /proc/self/status ] && [ "$metrics" -gt 0 ]; then
    rss="$(printf '%s\n' "$lines" | grep -c '"metric":"gauge/proc\.mem\.vmhwm_bytes"' || true)"
    if [ "$rss" -eq 0 ]; then
      fail "$name" "metrics snapshot carries no proc.mem.vmhwm_bytes peak-RSS gauge"
      bench_ok=0
    fi
  fi
  # Only a fully-healthy binary contributes lines: partial output from a
  # wedged bench must not launder itself into BENCH_RESULTS.json.
  if [ "$bench_ok" -eq 1 ] && [ -n "$lines" ]; then
    printf '%s\n' "$lines" >> "$tmp"
  fi
  echo "   $timings timed, $metrics metric lines" >&2
done

if [ -s "$failed" ]; then
  echo "run_all.sh: FAIL: $(wc -l < "$failed") wedged or missing bench binaries:" >&2
  sed 's/^/run_all.sh:   /' "$failed" >&2
  exit 1
fi

if [ ! -s "$tmp" ]; then
  echo "run_all.sh: no measurements collected" >&2
  exit 1
fi

{
  echo '['
  sed '$!s/$/,/' "$tmp"
  echo ']'
} > "$OUTPUT"

echo "wrote $(wc -l < "$tmp") measurements to $OUTPUT" >&2
exit 0
