#!/bin/sh
# Runs every bench binary and aggregates their JSON lines (emitted by the
# JsonLineReporter in bench/bench_json.h) into one JSON array.
#
#   bench/run_all.sh [BUILD_DIR] [OUTPUT]
#
# BUILD_DIR defaults to "build", OUTPUT to "BENCH_RESULTS.json".  Uses a
# small --benchmark_min_time so the full sweep finishes in seconds; pass
# ATK_BENCH_MIN_TIME=0.5 (or similar) for steadier numbers.
#
# Exits non-zero when a bench binary is missing (expected set = the
# bench_*.cpp sources next to this script), crashes, or contributes no
# measurements — a silent hole in BENCH_RESULTS.json is a failure.
set -eu

BUILD_DIR="${1:-build}"
OUTPUT="${2:-BENCH_RESULTS.json}"
MIN_TIME="${ATK_BENCH_MIN_TIME:-0.01}"
SRC_DIR="$(dirname "$0")"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "run_all.sh: no $BUILD_DIR/bench directory (build the project first)" >&2
  exit 1
fi

tmp="$(mktemp)"
raw="$(mktemp)"
trap 'rm -f "$tmp" "$raw"' EXIT

status=0
for src in "$SRC_DIR"/bench_*.cpp; do
  name="$(basename "$src" .cpp)"
  bin="$BUILD_DIR/bench/$name"
  if [ ! -x "$bin" ]; then
    echo "run_all.sh: missing bench binary $bin" >&2
    status=1
    continue
  fi
  echo "== $name" >&2
  # Run the binary first so its real exit status is observed (a pipeline
  # would report grep's status instead and mask a crash).
  if ! "$bin" --benchmark_min_time="$MIN_TIME" --benchmark_color=false > "$raw"; then
    echo "run_all.sh: $name exited non-zero" >&2
    status=1
    continue
  fi
  # Console table goes to stderr-visible log; JSON lines are extracted from
  # stdout (benchmark's color codes may prefix them, hence grep -o).
  lines="$(grep -o '{"bench":.*}' "$raw" || true)"
  # Timing lines vs the end-of-run metrics snapshot (counter/gauge/histogram
  # namespaces, emitted by EmitMetricsSnapshot): a binary must contribute at
  # least one of each — no timings means the benchmark ran nothing, no
  # metrics means the snapshot plumbing broke.
  timings="$(printf '%s\n' "$lines" | grep -c '"metric":"BM_' || true)"
  metrics="$(printf '%s\n' "$lines" \
    | grep -c '"metric":"\(counter\|gauge\|histogram\)/' || true)"
  if [ "$timings" -eq 0 ]; then
    echo "run_all.sh: $name contributed no timed measurements" >&2
    status=1
  fi
  if [ "$metrics" -eq 0 ]; then
    echo "run_all.sh: $name contributed no metrics snapshot" >&2
    status=1
  fi
  if [ -n "$lines" ]; then
    printf '%s\n' "$lines" >> "$tmp"
  fi
  echo "   $timings timed, $metrics metric lines" >&2
done

if [ ! -s "$tmp" ]; then
  echo "run_all.sh: no measurements collected" >&2
  exit 1
fi

{
  echo '['
  sed '$!s/$/,/' "$tmp"
  echo ']'
} > "$OUTPUT"

echo "wrote $(wc -l < "$tmp") measurements to $OUTPUT" >&2
exit "$status"
