// Focused coverage for the interaction chrome: menu masks and composition,
// keymap prefix machinery, the proc table's conventions, fonts, and the
// print job — the small mechanisms the §3 "parental authority" channels run
// on.

#include <gtest/gtest.h>

#include "src/apps/standard_modules.h"
#include "src/base/keymap.h"
#include "src/base/menus.h"
#include "src/base/interaction_manager.h"
#include "src/base/proctable.h"
#include "src/class_system/loader.h"
#include "src/base/menu_popup.h"
#include "src/components/text/text_view.h"
#include "src/components/widgets/menu_view.h"
#include "src/wm/window_system.h"

namespace atk {
namespace {

// ---- MenuList masks & composition -----------------------------------------------

TEST(Menus, MaskHidesAndShowsItemGroups) {
  // ATK's menu masks: a view flips whole groups on/off (selection-dependent
  // items being the classic use).
  constexpr uint32_t kAlways = 1u << 0;
  constexpr uint32_t kWithSelection = 1u << 1;
  MenuList menus;
  menus.Add("Edit~Paste", "paste", 0, kAlways);
  menus.Add("Edit~Cut", "cut", 0, kWithSelection);
  menus.Add("Edit~Copy", "copy", 0, kWithSelection);

  menus.SetActiveMask(kAlways);
  EXPECT_EQ(menus.Visible().size(), 1u);
  EXPECT_EQ(menus.Find("Edit~Cut"), nullptr);
  ASSERT_NE(menus.Find("Edit~Paste"), nullptr);

  menus.SetActiveMask(kAlways | kWithSelection);
  EXPECT_EQ(menus.Visible().size(), 3u);
  EXPECT_NE(menus.Find("Edit~Cut"), nullptr);
}

TEST(Menus, AddReplacesSameCardLabel) {
  MenuList menus;
  menus.Add("File~Save", "save-v1");
  menus.Add("File~Save", "save-v2");
  EXPECT_EQ(menus.size(), 1u);
  EXPECT_EQ(menus.Find("File~Save")->proc_name, "save-v2");
}

TEST(Menus, AppendShadowsByCardAndLabel) {
  MenuList inner;
  inner.Add("File~Save", "inner-save");
  MenuList outer;
  outer.Add("File~Save", "outer-save");
  outer.Add("File~Quit", "outer-quit");
  MenuList composed;
  composed.Append(inner);   // Innermost first (focus path order).
  composed.Append(outer);
  EXPECT_EQ(composed.size(), 2u);
  EXPECT_EQ(composed.Find("File~Save")->proc_name, "inner-save");
  EXPECT_EQ(composed.Find("File~Quit")->proc_name, "outer-quit");
}

TEST(Menus, BareLabelSpecUsesDefaultCardAndBareLookupMatchesAnyCard) {
  MenuList menus;
  menus.Add("Undo", "undo");  // Default card.
  menus.Add("Search~Forward", "fwd");
  EXPECT_EQ(menus.Find("Undo")->card, "Main");
  // Bare lookup finds the item whatever card it landed on.
  EXPECT_NE(menus.Find("Forward"), nullptr);
  EXPECT_EQ(menus.Find("Backward"), nullptr);
}

TEST(Menus, RemoveDeletesByCardAndLabel) {
  MenuList menus;
  menus.Add("File~Save", "save");
  menus.Add("File~Open", "open");
  menus.Remove("File~Save");
  EXPECT_EQ(menus.size(), 1u);
  EXPECT_EQ(menus.Find("File~Save"), nullptr);
}

// ---- KeyMap / KeyState ----------------------------------------------------------------

TEST(KeyMaps, PrefixDetection) {
  KeyMap map;
  map.Bind("abc", "p1");
  map.Bind("abd", "p2");
  map.Bind("x", "p3");
  EXPECT_TRUE(map.IsPrefix("a"));
  EXPECT_TRUE(map.IsPrefix("ab"));
  EXPECT_FALSE(map.IsPrefix("abc"));  // Exact is not a strict prefix.
  EXPECT_FALSE(map.IsPrefix("b"));
  EXPECT_FALSE(map.IsPrefix("xq"));
  EXPECT_EQ(map.Lookup("abd")->proc_name, "p2");
  map.Unbind("abd");
  EXPECT_EQ(map.Lookup("abd"), nullptr);
  EXPECT_TRUE(map.IsPrefix("ab"));  // "abc" still there.
}

TEST(KeyMaps, KeyStateWalksChainInnermostFirst) {
  KeyMap inner;
  KeyMap outer;
  inner.Bind("k", "inner-k");
  outer.Bind("k", "outer-k");
  outer.Bind("q", "outer-q");
  std::vector<const KeyMap*> chain = {&inner, &outer};
  KeyState state;
  ASSERT_EQ(state.Feed('k', chain), KeyState::Result::kComplete);
  EXPECT_EQ(state.binding()->proc_name, "inner-k");  // Shadowing.
  ASSERT_EQ(state.Feed('q', chain), KeyState::Result::kComplete);
  EXPECT_EQ(state.binding()->proc_name, "outer-q");  // Fallthrough.
}

TEST(KeyMaps, PrefixAccumulatesAcrossMapsAndResetsOnMiss) {
  KeyMap map;
  map.Bind(std::string{Ctl('x')} + std::string{Ctl('s')}, "save");
  std::vector<const KeyMap*> chain = {&map};
  KeyState state;
  EXPECT_EQ(state.Feed(Ctl('x'), chain), KeyState::Result::kPrefix);
  EXPECT_EQ(state.pending().size(), 1u);
  EXPECT_EQ(state.Feed('z', chain), KeyState::Result::kNoMatch);
  EXPECT_TRUE(state.pending().empty());  // Reset after the miss.
  EXPECT_EQ(state.Feed(Ctl('x'), chain), KeyState::Result::kPrefix);
  EXPECT_EQ(state.Feed(Ctl('s'), chain), KeyState::Result::kComplete);
  EXPECT_EQ(state.binding()->proc_name, "save");
}

TEST(KeyMaps, CtlHelperMapsToControlBytes) {
  EXPECT_EQ(Ctl('a'), '\001');
  EXPECT_EQ(Ctl('x'), '\030');
  EXPECT_EQ(Ctl('A'), '\001');
}

// ---- ProcTable -----------------------------------------------------------------------------

TEST(Procs, RegisterInvokeUnregister) {
  ProcTable& procs = ProcTable::Instance();
  int calls = 0;
  long seen_rock = 0;
  procs.Register("chrome-test-proc", [&](View*, long rock) {
    ++calls;
    seen_rock = rock;
  });
  EXPECT_TRUE(procs.Contains("chrome-test-proc"));
  EXPECT_TRUE(procs.Invoke("chrome-test-proc", nullptr, 99));
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_rock, 99);
  procs.Unregister("chrome-test-proc");
  EXPECT_FALSE(procs.Contains("chrome-test-proc"));
  EXPECT_FALSE(procs.Invoke("chrome-test-proc", nullptr));
}

TEST(Procs, UnknownNameWithUnknownModulePrefixFails) {
  EXPECT_FALSE(ProcTable::Instance().Invoke("nosuchthing-at-all", nullptr));
}

TEST(Procs, ReplacingARegistrationWins) {
  ProcTable& procs = ProcTable::Instance();
  std::string hit;
  procs.Register("chrome-replace", [&](View*, long) { hit = "old"; });
  procs.Register("chrome-replace", [&](View*, long) { hit = "new"; });
  procs.Invoke("chrome-replace", nullptr);
  EXPECT_EQ(hit, "new");
  procs.Unregister("chrome-replace");
}

// ---- Loader pinning (runapp's resident base) --------------------------------------------------

TEST(LoaderPinning, PinnedModulesRefuseUnload) {
  RegisterStandardModules();
  Loader& loader = Loader::Instance();
  ASSERT_TRUE(loader.Pin("widgets"));
  EXPECT_TRUE(loader.IsLoaded("widgets"));
  EXPECT_FALSE(loader.Unload("widgets"));
  loader.UnloadAllForTest();
  EXPECT_TRUE(loader.IsLoaded("widgets"));  // Survives even test cleanup.
}

// ---- Fonts: interning and parsing edges --------------------------------------------------------

TEST(Fonts, InterningReturnsSameInstance) {
  const Font& a = Font::Get(FontSpec{"andy", 12, kBold});
  const Font& b = Font::Get(FontSpec{"andy", 12, kBold});
  EXPECT_EQ(&a, &b);
  const Font& c = Font::Get(FontSpec{"andy", 12, kPlain});
  EXPECT_NE(&a, &c);
}

TEST(Fonts, ParseHandlesMissingPieces) {
  FontSpec no_size = FontSpec::Parse("andy");
  EXPECT_EQ(no_size.family, "andy");
  EXPECT_EQ(no_size.size, 10);  // Default survives.
  FontSpec no_family = FontSpec::Parse("12b");
  EXPECT_EQ(no_family.family, "andy");
  EXPECT_EQ(no_family.size, 12);
  EXPECT_EQ(no_family.style, unsigned{kBold});
}

TEST(Fonts, NonAsciiGlyphRendersAsBox) {
  const Font& font = Font::Default();
  // The replacement box is fully inked in its 5x7 master cell.
  int ink = 0;
  for (int y = 0; y < 7; ++y) {
    for (int x = 0; x < 5; ++x) {
      ink += font.GlyphBit(static_cast<char>(0xF0), x, y) ? 1 : 0;
    }
  }
  EXPECT_EQ(ink, 35);
}

// ---- Pop-up menus through the interaction manager ------------------------------------------------

TEST(PopupMenus, RightClickRaisesChoosesAndDismisses) {
  RegisterStandardModules();
  Loader& loader = Loader::Instance();
  loader.Require("text");
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 300, 200, "menus");
  TextData text;
  text.SetText("hello menu world");
  TextView view;
  view.SetText(&text);
  im->SetChild(&view);
  im->SetInputFocus(&view);
  view.SetDot(0, 5);  // Select "hello" so Edit~Copy has something to copy.
  im->RunOnce();

  // Right-click raises the composed menus; the widgets module loads on
  // demand to provide the popup class.
  im->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, Point{40, 40}, kRightButton));
  im->RunOnce();
  ASSERT_TRUE(im->menus_visible());
  EXPECT_TRUE(loader.IsLoaded("widgets"));
  View* popup = im->popup_menu();
  ASSERT_NE(popup, nullptr);
  EXPECT_FALSE(popup->bounds().IsEmpty());
  // The popup painted over the text.
  const PixelImage& display = im->window()->Display();
  Rect popup_bounds = popup->DeviceBounds();
  EXPECT_EQ(display.GetPixel(popup_bounds.x, popup_bounds.y), kBlack);  // Border.

  // Drag to the "Edit~Copy" row and release: the proc runs, menu dismisses.
  MenuPopupView* typed = ObjectCast<MenuPopupView>(popup);
  ASSERT_NE(typed, nullptr);
  MenuView* concrete = ObjectCast<MenuView>(popup);
  ASSERT_NE(concrete, nullptr);
  int copy_row = -1;
  for (size_t i = 0; i < concrete->rows().size(); ++i) {
    if (!concrete->rows()[i].is_header && concrete->rows()[i].label == "Copy") {
      copy_row = static_cast<int>(i);
    }
  }
  ASSERT_GE(copy_row, 0);
  Point over_copy = popup_bounds.origin() +
                    Point{10, copy_row * concrete->RowHeight() + 2};
  TextView::KillBuffer().clear();
  im->window()->Inject(InputEvent::MouseAt(EventType::kMouseDrag, over_copy));
  im->RunOnce();
  EXPECT_EQ(concrete->highlighted(), copy_row);
  im->window()->Inject(InputEvent::MouseAt(EventType::kMouseUp, over_copy));
  im->RunOnce();
  EXPECT_FALSE(im->menus_visible());
  EXPECT_EQ(TextView::KillBuffer(), "hello");  // Edit~Copy ran on the focus view.
  // The area under the popup was repainted.
  im->RunOnce();
  view.SetText(nullptr);
}

TEST(PopupMenus, ReleaseOutsideDismissesWithoutInvoking) {
  RegisterStandardModules();
  Loader::Instance().Require("text");
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 300, 200, "menus");
  TextData text;
  text.SetText("abc");
  TextView view;
  view.SetText(&text);
  im->SetChild(&view);
  im->SetInputFocus(&view);
  im->RunOnce();
  im->ResetStats();
  im->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, Point{10, 10}, kRightButton));
  im->RunOnce();
  ASSERT_TRUE(im->menus_visible());
  im->window()->Inject(InputEvent::MouseAt(EventType::kMouseUp, Point{299, 199}));
  im->RunOnce();
  EXPECT_FALSE(im->menus_visible());
  EXPECT_EQ(im->stats().proc_invocations, 0u);
  view.SetText(nullptr);
}

// ---- Message-line + dialog default behaviour through an app-level view --------------------------

TEST(Chrome, MenuEventForUnknownItemIsIgnored) {
  RegisterStandardModules();
  Loader::Instance().Require("text");
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 200, 100, "chrome");
  TextData text;
  TextView view;
  view.SetText(&text);
  im->SetChild(&view);
  im->SetInputFocus(&view);
  im->window()->Inject(InputEvent::MenuChoice("NoSuch~Item"));
  im->RunOnce();  // Must not crash or invoke anything.
  EXPECT_EQ(im->stats().proc_invocations, 0u);
  view.SetText(nullptr);
}

}  // namespace
}  // namespace atk
