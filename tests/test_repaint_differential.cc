// Differential repaint harness: on the PixelImage ("itc") backend, the
// incremental damage-driven repaint must be byte-identical to a forced
// full-window repaint after every step of a workload.  This pins down the
// banded region algebra, the per-view clip memoization, and the text
// layout cache: any of them shaving too much off the repaint shows up as a
// display hash divergence at the exact step it happens.
//
// Every workload runs twice — with the caches enabled and disabled — so the
// cached and uncached pipelines are both held to the same oracle.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/apps/standard_modules.h"
#include "src/base/interaction_manager.h"
#include "src/class_system/loader.h"
#include "src/components/table/chart.h"
#include "src/components/table/table_data.h"
#include "src/components/text/text_view.h"
#include "src/wm/window_system.h"

namespace atk {
namespace {

class RepaintDifferentialTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    RegisterStandardModules();
    Loader::Instance().Require("text");
    Loader::Instance().Require("table");
    caches_ = GetParam();
    TextView::SetLayoutCacheEnabled(caches_);
  }

  void TearDown() override {
    TextView::SetLayoutCacheEnabled(true);  // Process-wide; restore default.
  }

  // Runs the pending incremental repaint, then forces a full-window repaint,
  // and requires the two displays to be byte-identical.
  void CheckStep(InteractionManager& im, const char* workload, int step) {
    im.RunOnce();
    uint64_t incremental = im.window()->Display().Hash();
    im.PostUpdate();  // Full-window damage: everything redraws from scratch.
    im.RunOnce();
    uint64_t full = im.window()->Display().Hash();
    ASSERT_EQ(incremental, full)
        << workload << " diverged at step " << step << " (caches "
        << (caches_ ? "on" : "off") << ")";
  }

  bool caches_ = true;
};

// A minimal host giving every child an equal horizontal slot.
class RowHost : public View {
 public:
  void Layout() override {
    if (graphic() == nullptr || children().empty()) {
      return;
    }
    Rect b = graphic()->LocalBounds();
    int w = std::max(1, b.width / static_cast<int>(children().size()));
    for (size_t i = 0; i < children().size(); ++i) {
      children()[i]->Allocate(Rect{static_cast<int>(i) * w, 0, w, b.height}, graphic());
    }
  }
};

TEST_P(RepaintDifferentialTest, EmbeddingWorkload) {
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 360, 240, "embed");
  im->SetClipMemoEnabled(caches_);
  TextData letter;
  letter.SetText("Dear reader,\n\nEnclosed are the figures ");
  TextView view;
  view.SetText(&letter);
  im->SetChild(&view);
  im->SetInputFocus(&view);
  CheckStep(*im, "embedding", 0);

  // Embed a live table mid-text, then keep editing around it.
  auto table = std::make_unique<TableData>();
  table->Resize(2, 2);
  table->SetText(0, 0, "q1");
  table->SetNumber(0, 1, 17);
  view.SetDot(letter.size());
  TableData* table_raw =
      static_cast<TableData*>(view.InsertObjectAtDot(std::move(table), "spread"));
  ASSERT_NE(table_raw, nullptr);
  CheckStep(*im, "embedding", 1);

  view.InsertText("\nwith kind regards.\n");
  CheckStep(*im, "embedding", 2);

  // Edits before the embedded object: the cached line prefix ends here.
  view.SetDot(5);
  view.InsertText("gentle ");
  CheckStep(*im, "embedding", 3);

  // Mutate the embedded object; only its lines should need re-measuring.
  table_raw->SetNumber(1, 1, 99);
  CheckStep(*im, "embedding", 4);

  view.StyleSelection("bold");
  view.SetDot(0, 4);
  view.StyleSelection("bold");
  CheckStep(*im, "embedding", 5);

  view.SetDot(letter.size());
  for (int i = 0; i < 6; ++i) {
    view.InsertText("another closing line of text\n");
    CheckStep(*im, "embedding", 6 + i);
  }

  if (caches_) {
    // The tail-append edits above must actually exercise the prefix reuse.
    EXPECT_GT(view.layout_lines_reused(), 0u);
  }
  view.SetText(nullptr);
}

TEST_P(RepaintDifferentialTest, TableToChartWorkload) {
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 400, 200, "charts");
  im->SetClipMemoEnabled(caches_);
  TableData table;
  table.Resize(5, 2);
  for (int r = 0; r < 5; ++r) {
    table.SetText(r, 0, "row" + std::to_string(r));
    table.SetNumber(r, 1, 10 + r * 7);
  }
  ChartData chart;
  chart.SetSource(&table);
  chart.SetTitle("diff");
  RowHost host;
  PieChartView pie;
  BarChartView bar;
  pie.SetDataObject(&chart);
  bar.SetDataObject(&chart);
  host.AddChild(&pie);
  host.AddChild(&bar);
  im->SetChild(&host);
  CheckStep(*im, "table-chart", 0);

  for (int step = 1; step <= 8; ++step) {
    table.SetNumber(step % 5, 1, step * 13 + 1);
    CheckStep(*im, "table-chart", step);
  }
  table.SetText(2, 0, "renamed");
  CheckStep(*im, "table-chart", 9);

  pie.SetDataObject(nullptr);
  bar.SetDataObject(nullptr);
}

TEST_P(RepaintDifferentialTest, ScrollWorkload) {
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 300, 160, "scroll");
  im->SetClipMemoEnabled(caches_);
  TextData doc;
  std::string body;
  for (int i = 0; i < 60; ++i) {
    body += "line " + std::to_string(i) + " with some scrolling ballast\n";
  }
  doc.SetText(body);
  TextView view;
  view.SetText(&doc);
  im->SetChild(&view);
  CheckStep(*im, "scroll", 0);

  int step = 1;
  for (int64_t unit : {5, 6, 7, 20, 0, 45, 44, 12}) {
    view.ScrollToUnit(unit);
    CheckStep(*im, "scroll", step++);
  }

  // Edit mid-document while scrolled: damage-driven repaint of a partial view.
  view.SetDot(doc.LineEnd(doc.PosOfLine(13)));
  view.InsertText(" tail");
  CheckStep(*im, "scroll", step++);

  view.SetText(nullptr);
}

INSTANTIATE_TEST_SUITE_P(CachesOnOff, RepaintDifferentialTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "CachesOn" : "CachesOff";
                         });

}  // namespace
}  // namespace atk
