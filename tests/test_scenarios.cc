// The application-shaped scenario suite (DESIGN.md §10): typescript
// streaming, the mail corpus, and deterministic collaborative replay.
//
// The determinism contract under test: every scenario is a pure function of
// its spec.  Same seed ⇒ byte-identical final documents — on one decode
// thread or eight, over a clean transport or a faulted one.  The ctest
// entries re-run this binary with ATK_DS_THREADS=8 and with ATK_NET_FAULTS
// exported, so the digests asserted here are pinned across all three
// configurations by the same assertions.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/metric_lines.h"
#include "src/class_system/observable.h"
#include "src/components/text/text_data.h"
#include "src/observability/observability.h"
#include "src/workload/edit_replay.h"
#include "src/workload/mail_corpus.h"
#include "src/workload/scenario.h"
#include "src/workload/session_trace.h"
#include "src/workload/typescript_stream.h"
#include "tests/test_json.h"

namespace atk {
namespace {

using testjson::JsonValue;
using testjson::ParseJson;

// ---- Typescript / console stream -------------------------------------------

TEST(TypescriptStream, SameSeedSameBytesAndPixels) {
  TypescriptStreamSpec spec;
  spec.seed = 5;
  spec.lines = 512;
  spec.batch_lines = 32;
  spec.views = 2;
  TypescriptStreamResult first = RunTypescriptStream(spec);
  TypescriptStreamResult second = RunTypescriptStream(spec);
  EXPECT_EQ(first.lines, 512);
  EXPECT_EQ(first.transcript_digest, second.transcript_digest);
  EXPECT_EQ(first.display_hash, second.display_hash);
  EXPECT_EQ(first.line_count, second.line_count);
  EXPECT_GT(first.bytes, 0);

  TypescriptStreamSpec other = spec;
  other.seed = 6;
  TypescriptStreamResult different = RunTypescriptStream(other);
  EXPECT_NE(first.transcript_digest, different.transcript_digest)
      << "a different seed must produce a different console stream";
}

TEST(TypescriptStream, TranscriptMatchesGeneratorIndependentOfViews) {
  // The view tree must never feed back into the document: the transcript is
  // exactly the generated lines no matter how many views watched them.
  TypescriptStreamSpec spec;
  spec.seed = 9;
  spec.lines = 200;
  spec.batch_lines = 7;  // Deliberately not a divisor of `lines`.
  spec.views = 1;
  std::string expected;
  for (int64_t i = 0; i < spec.lines; ++i) {
    expected += TypescriptLine(spec.seed, i);
    expected += '\n';
  }
  TypescriptStreamResult one_view = RunTypescriptStream(spec);
  EXPECT_EQ(one_view.transcript_digest, Fnv1a64(expected));
  spec.views = 3;
  TypescriptStreamResult three_views = RunTypescriptStream(spec);
  EXPECT_EQ(three_views.transcript_digest, Fnv1a64(expected));
}

TEST(TypescriptStream, BatchedAppendsReuseLayoutPrefix) {
  TypescriptStreamSpec spec;
  spec.seed = 3;
  spec.lines = 600;
  spec.batch_lines = 50;
  TypescriptStreamResult result = RunTypescriptStream(spec);
  EXPECT_GT(result.layout_lines_reused, 0u)
      << "tail appends must hit the layout prefix cache, not re-measure "
         "the whole transcript each batch";
  EXPECT_EQ(result.update_cycles, 1 + spec.lines / spec.batch_lines);
}

TEST(TypescriptStream, GeneratedLinesAreSevenBitPrintable) {
  for (int64_t i = 0; i < 200; ++i) {
    std::string line = TypescriptLine(77, i);
    for (char c : line) {
      unsigned char byte = static_cast<unsigned char>(c);
      ASSERT_TRUE(byte >= 0x20 && byte < 0x7F)
          << "line " << i << " carries unprintable byte " << static_cast<int>(byte);
    }
  }
}

// ---- Mail corpus ------------------------------------------------------------

TEST(MailCorpus, CleanCorpusRoundTripsByteIdentically) {
  MailCorpusSpec spec;
  spec.seed = 21;
  spec.messages = 24;
  spec.embed_fraction = 0.6;
  spec.corrupt_fraction = 0.0;
  MailCorpusResult result = RunMailCorpus(spec);
  EXPECT_EQ(result.messages, 24);
  EXPECT_EQ(result.clean_roundtrip_mismatches, 0)
      << "a clean write -> read -> re-write cycle must be byte-identical";
  EXPECT_EQ(result.read_failures, 0);
  EXPECT_EQ(result.delivered, 24) << "every surviving body must be 7-bit mailable";
  EXPECT_EQ(result.corpus_digest, RunMailCorpus(spec).corpus_digest);
}

TEST(MailCorpus, DecodeThreadCountDoesNotChangeBytes) {
  MailCorpusSpec spec;
  spec.seed = 33;
  spec.messages = 16;
  spec.embed_fraction = 0.8;  // Embedded objects are what the pool decodes.
  spec.corrupt_fraction = 0.25;
  MailCorpusResult serial = RunMailCorpus(spec);
  spec.decode_threads = 8;
  MailCorpusResult threaded = RunMailCorpus(spec);
  EXPECT_EQ(serial.corpus_digest, threaded.corpus_digest)
      << "parallel deferred decode must be byte-identical to serial";
  EXPECT_EQ(serial.read_failures, 0);
  EXPECT_EQ(threaded.read_failures, 0);
}

TEST(MailCorpus, CorruptedMessagesSurviveThroughSalvage) {
  MailCorpusSpec spec;
  spec.seed = 55;
  spec.messages = 20;
  spec.corrupt_fraction = 0.5;
  spec.stream_faults = 2;
  MailCorpusResult result = RunMailCorpus(spec);
  EXPECT_GT(result.salvaged, 0) << "the corrupt fraction must actually corrupt";
  EXPECT_EQ(result.read_failures, 0)
      << "every salvaged message must still parse into a document";
  EXPECT_EQ(result.corpus_digest, RunMailCorpus(spec).corpus_digest)
      << "corruption + salvage is seeded and must be deterministic";
}

// ---- Edit-trace recording format --------------------------------------------

SessionTraceSpec SmallTraceSpec(uint64_t seed = 13) {
  SessionTraceSpec spec;
  spec.seed = seed;
  spec.sessions = 3;
  spec.steps = 40;
  spec.initial_size = 128;
  return spec;
}

void ExpectTracesEqual(const EditTrace& a, const EditTrace& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.initial_text, b.initial_text);
  ASSERT_EQ(a.edits.size(), b.edits.size());
  for (size_t i = 0; i < a.edits.size(); ++i) {
    EXPECT_EQ(a.edits[i].version, b.edits[i].version) << "edit " << i;
    EXPECT_EQ(a.edits[i].session, b.edits[i].session) << "edit " << i;
    EXPECT_EQ(a.edits[i].insert, b.edits[i].insert) << "edit " << i;
    EXPECT_EQ(a.edits[i].pos, b.edits[i].pos) << "edit " << i;
    EXPECT_EQ(a.edits[i].len, b.edits[i].len) << "edit " << i;
    EXPECT_EQ(a.edits[i].text, b.edits[i].text) << "edit " << i;
  }
}

TEST(EditTrace, RecordingIsDeterministic) {
  EditTrace first = RecordEditTrace(SmallTraceSpec());
  EditTrace second = RecordEditTrace(SmallTraceSpec());
  ExpectTracesEqual(first, second);
  EXPECT_FALSE(first.edits.empty());
  // Versions are consecutive from 1: only applied edits bump the document.
  for (size_t i = 0; i < first.edits.size(); ++i) {
    EXPECT_EQ(first.edits[i].version, i + 1) << "edit " << i;
  }
}

TEST(EditTrace, RoundTripsThroughDatastream) {
  EditTrace trace = RecordEditTrace(SmallTraceSpec());
  std::string wire = EditTraceToDatastream(trace);
  // The recording is a §5 document: 7-bit, bounded lines.
  for (char c : wire) {
    unsigned char byte = static_cast<unsigned char>(c);
    ASSERT_TRUE(byte == '\n' || (byte >= 0x20 && byte < 0x7F));
  }
  EditTrace parsed;
  ASSERT_TRUE(EditTraceFromDatastream(wire, &parsed).ok());
  ExpectTracesEqual(trace, parsed);
  EXPECT_EQ(EditTraceToDatastream(parsed), wire)
      << "re-serializing a parsed trace must be byte-identical";
}

TEST(EditTrace, UnknownDirectivesAreSkippedForForwardCompat) {
  EditTrace trace = RecordEditTrace(SmallTraceSpec());
  std::string wire = EditTraceToDatastream(trace);
  size_t end = wire.find("\\enddata{editrace");
  ASSERT_NE(end, std::string::npos);
  wire.insert(end, "\\futurefield{3,something}\n");
  EditTrace parsed;
  ASSERT_TRUE(EditTraceFromDatastream(wire, &parsed).ok())
      << "a newer recorder's extra directives must not break an older reader";
  ExpectTracesEqual(trace, parsed);
}

TEST(EditTrace, TruncatedAndDamagedInputsAreRejected) {
  EditTrace trace = RecordEditTrace(SmallTraceSpec());
  std::string wire = EditTraceToDatastream(trace);
  EditTrace parsed;
  EXPECT_FALSE(EditTraceFromDatastream(wire.substr(0, wire.size() / 2), &parsed).ok());
  std::string bad_hex = wire;
  size_t edit_pos = bad_hex.find("\\edit{");
  ASSERT_NE(edit_pos, std::string::npos);
  bad_hex.replace(edit_pos, 6, "\\edit{ZZ,");
  EXPECT_FALSE(EditTraceFromDatastream(bad_hex, &parsed).ok());
  EXPECT_FALSE(EditTraceFromDatastream("plain text, no object", &parsed).ok());
}

// ---- Replay determinism -----------------------------------------------------

TEST(Replay, CleanReplayMatchesOracle) {
  EditTrace trace = RecordEditTrace(SmallTraceSpec());
  std::string expected = ExpectedReplayText(trace);
  ReplayResult result = ReplayEditTrace(trace);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.replicas_converged);
  EXPECT_EQ(result.final_text, expected);
  EXPECT_EQ(result.final_digest, Fnv1a64(expected));
  EXPECT_EQ(result.final_version, trace.edits.size());
  EXPECT_EQ(result.edits_applied, static_cast<int64_t>(trace.edits.size()));
}

TEST(Replay, ByteDeterministicUnderSeededTransportFaults) {
  EditTrace trace = RecordEditTrace(SmallTraceSpec(31));
  std::string expected = ExpectedReplayText(trace);
  for (uint64_t fault_seed = 1; fault_seed <= 6; ++fault_seed) {
    ReplayOptions options;
    options.fault_seed = fault_seed * 97;
    ReplayResult result = ReplayEditTrace(trace, options);
    EXPECT_TRUE(result.completed) << "fault seed " << fault_seed;
    EXPECT_TRUE(result.replicas_converged) << "fault seed " << fault_seed;
    EXPECT_EQ(result.final_text, expected)
        << "fault seed " << fault_seed
        << ": a faulted transport must not change the final bytes";
  }
}

TEST(Replay, HonorsNetFaultsEnvKnob) {
  // Over a clean environment this is a clean replay; the
  // scenarios_env_net_faults ctest entry re-runs it with ATK_NET_FAULTS
  // exported, holding the same byte-determinism bar under that plan.
  EditTrace trace = RecordEditTrace(SmallTraceSpec(47));
  ReplayOptions options;
  options.use_env_faults = true;
  ReplayResult result = ReplayEditTrace(trace, options);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.replicas_converged);
  EXPECT_EQ(result.final_text, ExpectedReplayText(trace));
}

TEST(Replay, SerializedTraceReplaysIdenticallyToLiveOne) {
  EditTrace live = RecordEditTrace(SmallTraceSpec(19));
  std::string wire = EditTraceToDatastream(live);
  EditTrace parsed;
  ASSERT_TRUE(EditTraceFromDatastream(wire, &parsed).ok());
  ReplayResult from_live = ReplayEditTrace(live);
  ReplayResult from_wire = ReplayEditTrace(parsed);
  EXPECT_EQ(from_live.final_digest, from_wire.final_digest);
  EXPECT_EQ(from_live.final_text, from_wire.final_text);

  // CI artifact hook: export the recording so a failed replay can be
  // inspected (and replayed locally) from the uploaded trace document.
  const char* export_path = std::getenv("ATK_SCENARIO_TRACE_EXPORT");
  if (export_path != nullptr && export_path[0] != '\0') {
    std::ofstream out(export_path, std::ios::binary);
    out << wire;
    ASSERT_TRUE(out.good()) << "could not write trace artifact to " << export_path;
  }
}

// ---- session_trace seed stability -------------------------------------------

// Canonical digest over every field the trace encoding carries; an RNG or
// generator change flips it.
uint64_t SessionTraceDigest(const SessionTrace& trace) {
  uint64_t digest = Fnv1a64(trace.initial_text);
  for (const TraceStep& step : trace.steps) {
    std::string enc = std::to_string(step.session) + (step.insert ? "i" : "d") +
                      std::to_string(step.pos) + "," + std::to_string(step.len) + "," +
                      step.text;
    digest = Fnv1a64(enc, digest);
  }
  return digest;
}

TEST(SessionTraceGolden, SeedSevenIsPinned) {
  // Golden digests: a deliberate generator change re-records them here; an
  // accidental one breaks this test instead of a downstream replay.
  SessionTraceSpec spec;
  spec.seed = 7;
  SessionTrace trace = BuildSessionTrace(spec);
  EXPECT_EQ(SessionTraceDigest(trace), 0xd139ba1c6ab99ccfull);
  EXPECT_EQ(Fnv1a64(ExpectedFinalText(trace)), 0x61daf16aa6111489ull);
}

TEST(SessionTraceGolden, SeedFortyTwoIsPinned) {
  SessionTraceSpec spec;
  spec.seed = 42;
  SessionTrace trace = BuildSessionTrace(spec);
  EXPECT_EQ(SessionTraceDigest(trace), 0xd739bb25394bf50dull);
  EXPECT_EQ(Fnv1a64(ExpectedFinalText(trace)), 0x7d07f7be34cef5d0ull);
}

// ---- Bench JSON output ------------------------------------------------------

TEST(BenchJson, MetricSnapshotLinesAreStrictJson) {
  // Populate the registry the way the scenario benches do, then hold every
  // line the bench binaries would print to the strict parser the
  // observability suite uses — the emitters must never drift apart.
  RunTypescriptStream(TypescriptStreamSpec{.seed = 2, .lines = 64, .batch_lines = 16});
  MailCorpusSpec mail;
  mail.seed = 2;
  mail.messages = 4;
  RunMailCorpus(mail);
  std::string lines = atk_bench::RenderMetricsSnapshot("bench_scenarios");
  ASSERT_FALSE(lines.empty());
  size_t parsed_lines = 0;
  size_t start = 0;
  while (start < lines.size()) {
    size_t end = lines.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "every metric line must be newline-terminated";
    std::string line = lines.substr(start, end - start);
    start = end + 1;
    JsonValue root;
    ASSERT_TRUE(ParseJson(line, &root)) << "not strict JSON: " << line;
    ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
    const JsonValue* bench = root.Get("bench");
    const JsonValue* metric = root.Get("metric");
    const JsonValue* value = root.Get("value");
    const JsonValue* unit = root.Get("unit");
    ASSERT_NE(bench, nullptr);
    EXPECT_EQ(bench->str, "bench_scenarios");
    ASSERT_NE(metric, nullptr);
    EXPECT_TRUE(metric->str.rfind("counter/", 0) == 0 ||
                metric->str.rfind("gauge/", 0) == 0 ||
                metric->str.rfind("histogram/", 0) == 0)
        << "snapshot metrics must be namespaced: " << metric->str;
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(value->kind, JsonValue::Kind::kNumber);
    ASSERT_NE(unit, nullptr);
    ++parsed_lines;
  }
  EXPECT_GT(parsed_lines, 4u);
  // The scenario counters the benches gate on must be present.
  EXPECT_NE(lines.find("counter/scenario.typescript.lines"), std::string::npos);
  EXPECT_NE(lines.find("counter/scenario.mail.roundtrips"), std::string::npos);
}

TEST(BenchJson, EscapingSurvivesHostileNames) {
  std::string line;
  atk_bench::FormatMetricLine(&line, "bench\"quote\\slash", "metric\nnewline", 1.5, "ns");
  JsonValue root;
  ASSERT_TRUE(ParseJson(line, &root)) << "escaping must keep the line strict: " << line;
  EXPECT_EQ(root.Get("value")->number, 1.5);
}

// ---- TextData bulk append under concurrent observation ----------------------

// The typescript scenario's hot path: a stream of tail appends, each
// notifying observers synchronously, while another thread concurrently
// snapshots the observability registry (exactly what the inspector and the
// bench snapshot emitters do).  Document mutation stays single-threaded —
// that is the observer contract — so the cross-thread traffic under TSan is
// the metrics/tracer plumbing the observers drive.
TEST(BulkAppend, ObserverNotificationUnderConcurrentSnapshots) {
  class CountingObserver : public Observer {
   public:
    void ObservedChanged(Observable* changed, const Change& change) override {
      (void)changed;
      if (change.kind == Change::Kind::kInserted) {
        inserted_units += change.added;
        ++notifications;
        observability::MetricsRegistry::Instance()
            .counter("scenario.typescript.lines")
            .Add(1);
      }
    }
    int64_t inserted_units = 0;
    int notifications = 0;
  };

  constexpr int kLines = 2000;
  TextData transcript;
  CountingObserver observer;
  transcript.AddObserver(&observer);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> snapshots{0};
  std::thread prober([&] {
    while (!done.load(std::memory_order_acquire)) {
      observability::TraceSnapshot snap = observability::Snapshot();
      snapshots.fetch_add(1, std::memory_order_relaxed);
      (void)snap;
    }
  });
  // Don't start appending until the prober is demonstrably running, so the
  // two loops genuinely overlap (the appends are fast enough to finish
  // before a freshly-spawned thread gets scheduled at all).
  while (snapshots.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }

  int64_t appended_bytes = 0;
  for (int64_t i = 0; i < kLines; ++i) {
    std::string line = TypescriptLine(123, i);
    line += '\n';
    transcript.InsertString(transcript.size(), line);
    appended_bytes += static_cast<int64_t>(line.size());
  }
  done.store(true, std::memory_order_release);
  prober.join();

  EXPECT_EQ(observer.notifications, kLines);
  EXPECT_EQ(observer.inserted_units, appended_bytes);
  EXPECT_EQ(transcript.size(), appended_bytes);
  EXPECT_GT(snapshots.load(), 0u) << "the prober must have raced at least once";
  // The bytes must match a serial rebuild: concurrency must not corrupt.
  std::string expected;
  for (int64_t i = 0; i < kLines; ++i) {
    expected += TypescriptLine(123, i);
    expected += '\n';
  }
  EXPECT_EQ(transcript.GetAllText(), expected);
  transcript.RemoveObserver(&observer);
}

}  // namespace
}  // namespace atk
