// Robustness: fault injection, datastream salvage, graceful degradation.
//
// The acceptance criteria for the harness live here:
//   * every proper prefix of a document is flagged by the reader;
//   * a 64-seed fault-injection sweep: salvage terminates, its output is
//     reader-clean, a salvage -> read -> save cycle reaches a byte-stable
//     fixed point, and undamaged siblings are recovered byte-exact;
//   * a failed module load degrades to an UnknownView placeholder with
//     bounded retry/backoff, never a crash;
//   * both window-system backends survive injected connection drops by
//     reconnecting and replaying a full-window expose.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "src/apps/standard_modules.h"
#include "src/base/data_object.h"
#include "src/base/interaction_manager.h"
#include "src/class_system/loader.h"
#include "src/components/frame/unknown_view.h"
#include "src/components/text/text_data.h"
#include "src/components/text/text_view.h"
#include "src/datastream/reader.h"
#include "src/datastream/writer.h"
#include "src/observability/observability.h"
#include "src/robustness/fault_injector.h"
#include "src/robustness/salvage.h"
#include "src/wm/wm_itc.h"
#include "src/wm/wm_x11sim.h"
#include "src/workload/corruption.h"

namespace atk {
namespace {

using Kind = DataStreamReader::Token::Kind;

std::string TokenizeAndReport(const std::string& input, bool* clean) {
  DataStreamReader reader(input);
  while (reader.Next().kind != Kind::kEof) {
  }
  *clean = reader.diagnostics().empty() && !reader.truncated();
  std::string report;
  for (const Diagnostic& d : reader.diagnostics()) {
    report += d.ToString() + "\n";
  }
  return report;
}

// ---- Reader diagnostics (satellite 1) -------------------------------------

TEST(ReaderDiagnostics, MalformedMarkerSurfacesAsDiagnosticToken) {
  DataStreamReader reader("\\begindata{text}\nhello");
  DataStreamReader::Token token = reader.Next();
  EXPECT_EQ(token.kind, Kind::kDiagnostic);
  // The raw damaged bytes are preserved in the token.
  EXPECT_EQ(token.text, "\\begindata{text}");
  ASSERT_FALSE(reader.diagnostics().empty());
  EXPECT_EQ(reader.diagnostics()[0].code, StatusCode::kCorrupt);
  EXPECT_EQ(reader.diagnostics()[0].offset, 0u);
}

TEST(ReaderDiagnostics, UnterminatedDirectiveSurfacesAsDiagnostic) {
  DataStreamReader reader("abc\\begindata{text,1\nrest");
  DataStreamReader::Token text = reader.Next();
  EXPECT_EQ(text.kind, Kind::kText);
  DataStreamReader::Token token = reader.Next();
  EXPECT_EQ(token.kind, Kind::kDiagnostic);
  EXPECT_EQ(token.text, "\\begindata{text,1");
  EXPECT_EQ(token.offset, 3u);
  EXPECT_FALSE(reader.diagnostics().empty());
}

TEST(ReaderDiagnostics, TruncationRecordsDiagnosticWithOffset) {
  DataStreamReader reader("\\begindata{text,1}\nbody");
  while (reader.Next().kind != Kind::kEof) {
  }
  EXPECT_TRUE(reader.truncated());
  ASSERT_FALSE(reader.diagnostics().empty());
  EXPECT_EQ(reader.diagnostics().back().code, StatusCode::kTruncated);
}

TEST(ReaderDiagnostics, CleanStreamHasNoDiagnostics) {
  bool clean = false;
  std::string report =
      TokenizeAndReport("\\begindata{text,1}\nhello \\bold{} world\n\\enddata{text,1}\n", &clean);
  EXPECT_TRUE(clean) << report;
}

// Satellite 3a: every nonzero proper prefix of a serialized document is
// flagged — truncation or a diagnostic, never a silent success.
TEST(ReaderDiagnostics, EveryProperPrefixIsFlagged) {
  std::ostringstream out;
  {
    DataStreamWriter writer(out);
    writer.BeginData("text");
    writer.WriteText("line one\nline \\ two with escapes \x05\n");
    int64_t inner = writer.BeginData("table");
    writer.WriteDirective("cols", "3");
    writer.EndData();
    writer.WriteViewReference("tableview", inner);
    writer.EndData();
  }
  std::string doc = out.str();
  ASSERT_GT(doc.size(), 10u);
  for (size_t cut = 1; cut < doc.size(); ++cut) {
    if (doc.find_first_not_of(" \t\n", cut) == std::string::npos) {
      continue;  // Only trailing whitespace is missing: a complete document.
    }
    DataStreamReader reader(doc.substr(0, cut));
    while (reader.Next().kind != Kind::kEof) {
    }
    EXPECT_TRUE(reader.truncated() || !reader.diagnostics().empty())
        << "prefix of " << cut << " bytes parsed clean";
  }
}

// ---- Salvager --------------------------------------------------------------

TEST(Salvage, CleanStreamPassesThroughByteExact) {
  std::string doc = GenerateSerializedDocument(7);
  SalvageReport report;
  DataStreamSalvager salvager;
  std::string out = salvager.Salvage(doc, &report);
  EXPECT_TRUE(report.clean) << report.ToString();
  EXPECT_EQ(out, doc);
  EXPECT_TRUE(report.status().ok());
}

TEST(Salvage, TruncatedStreamGetsMarkersClosed) {
  std::string doc =
      "\\begindata{text,1}\nhello\n\\begindata{table,2}\n\\cols{2}\n";
  SalvageReport report;
  DataStreamSalvager salvager;
  std::string out = salvager.Salvage(doc, &report);
  EXPECT_FALSE(report.clean);
  EXPECT_EQ(report.markers_closed, 2);
  bool clean = false;
  std::string diag = TokenizeAndReport(out, &clean);
  EXPECT_TRUE(clean) << diag << "\n" << out;
}

TEST(Salvage, MangledChildQuarantinesSubtreeAndKeepsSiblings) {
  // Three siblings; the middle one's \begindata loses its id.
  std::string pre = "\\begindata{text,1}\nbefore\n";
  std::string good1 = "\\begindata{table,2}\n\\cols{2}\n\\enddata{table,2}\n";
  std::string damaged = "\\begindata{drawing}\nshapes...\n\\enddata{drawing,3}\n";
  std::string good2 = "\\begindata{table,4}\n\\cols{9}\n\\enddata{table,4}\n";
  std::string post = "after\n\\enddata{text,1}\n";
  std::string doc = pre + good1 + damaged + good2 + post;

  SalvageReport report;
  DataStreamSalvager salvager;
  std::string out = salvager.Salvage(doc, &report);

  EXPECT_FALSE(report.clean);
  EXPECT_EQ(report.subtrees_quarantined, 1);
  // Undamaged siblings recovered byte-exact.
  EXPECT_NE(out.find(good1), std::string::npos);
  EXPECT_NE(out.find(good2), std::string::npos);
  // The damaged subtree is preserved verbatim inside the quarantine.
  EXPECT_NE(out.find(kLostFoundType), std::string::npos);
  size_t body_start = out.find("\\begindata{lostfound,");
  ASSERT_NE(body_start, std::string::npos);
  body_start = out.find('\n', body_start) + 1;
  size_t body_end = out.find("\n\\enddata{lostfound,", body_start);
  ASSERT_NE(body_end, std::string::npos);
  EXPECT_EQ(DataStreamSalvager::UnescapeQuarantine(out.substr(body_start, body_end - body_start)),
            damaged);
  // Quarantine carries a placement ref so components keep it across saves.
  EXPECT_NE(out.find("\\view{unknownview,"), std::string::npos);
  // The result is reader-clean.
  bool clean = false;
  std::string diag = TokenizeAndReport(out, &clean);
  EXPECT_TRUE(clean) << diag << "\n" << out;
}

TEST(Salvage, StrayEnddataIsQuarantined) {
  std::string doc = "\\begindata{text,1}\nhello\n\\enddata{table,9}\nworld\n\\enddata{text,1}\n";
  SalvageReport report;
  DataStreamSalvager salvager;
  std::string out = salvager.Salvage(doc, &report);
  EXPECT_EQ(report.subtrees_quarantined, 1);
  EXPECT_NE(out.find("hello"), std::string::npos);
  EXPECT_NE(out.find("world"), std::string::npos);
  bool clean = false;
  TokenizeAndReport(out, &clean);
  EXPECT_TRUE(clean);
}

TEST(Salvage, OuterEnddataClosesSkippedMarkers) {
  // The inner table's end marker was destroyed; the root's \enddata must
  // close the table on its way out instead of being reported mismatched.
  std::string doc = "\\begindata{text,1}\n\\begindata{table,2}\n\\cols{2}\n\\enddata{text,1}\n";
  SalvageReport report;
  DataStreamSalvager salvager;
  std::string out = salvager.Salvage(doc, &report);
  EXPECT_EQ(report.markers_closed, 1);
  EXPECT_NE(out.find("\\enddata{table,2}"), std::string::npos);
  bool clean = false;
  TokenizeAndReport(out, &clean);
  EXPECT_TRUE(clean);
}

TEST(Salvage, LoneBackslashIsEscapedInPlace) {
  std::string doc = "\\begindata{text,1}\na \\ b\n\\enddata{text,1}\n";
  SalvageReport report;
  DataStreamSalvager salvager;
  std::string out = salvager.Salvage(doc, &report);
  EXPECT_EQ(report.backslashes_escaped, 1);
  EXPECT_EQ(report.subtrees_quarantined, 0);
  EXPECT_NE(out.find("a \\\\ b"), std::string::npos);
  bool clean = false;
  TokenizeAndReport(out, &clean);
  EXPECT_TRUE(clean);
}

TEST(Salvage, NoRootSynthesizesOne) {
  SalvageReport report;
  DataStreamSalvager salvager;
  std::string out = salvager.Salvage("just some loose bytes\n", &report);
  EXPECT_TRUE(report.root_synthesized);
  EXPECT_EQ(report.subtrees_quarantined, 1);
  bool clean = false;
  TokenizeAndReport(out, &clean);
  EXPECT_TRUE(clean);
  // The loose bytes survive inside the quarantine.
  EXPECT_NE(out.find("just some loose bytes"), std::string::npos);
}

TEST(Salvage, SalvageIsIdempotent) {
  for (uint64_t seed : {3u, 11u, 29u}) {
    CorruptionScenario scenario = RunCorruptionScenario(seed);
    SalvageReport report;
    DataStreamSalvager salvager;
    std::string again = salvager.Salvage(scenario.salvaged, &report);
    EXPECT_TRUE(report.clean) << "seed " << seed << ": " << report.ToString();
    EXPECT_EQ(again, scenario.salvaged) << "seed " << seed;
  }
}

// The tentpole acceptance sweep: 64 seeds of random damage.
TEST(Salvage, SixtyFourSeedFaultInjectionSweep) {
  int salvaged_count = 0;
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    CorruptionScenario s = RunCorruptionScenario(seed);
    // Salvage terminated (we are here) and produced a reader-clean stream.
    EXPECT_TRUE(s.reread_clean) << "seed " << seed << "\n" << s.report.ToString();
    ASSERT_TRUE(s.reread_ok) << "seed " << seed;
    // Fixed point: re-reading and re-saving the resaved stream is stable.
    ReadContext ctx;
    std::unique_ptr<DataObject> round2 = ReadDocument(s.resaved, &ctx);
    ASSERT_NE(round2, nullptr) << "seed " << seed;
    EXPECT_EQ(WriteDocument(*round2), s.resaved) << "seed " << seed;
    if (!s.report.clean) {
      ++salvaged_count;
    }
  }
  // The fault mix must actually be exercising the salvager.
  EXPECT_GT(salvaged_count, 32);
}

// Loss bound: when damage hits one byte inside one child, salvage keeps
// every undamaged sibling byte-exact and loses at most the damaged subtree.
TEST(Salvage, SingleFaultLossIsBoundedToTheDamagedSubtree) {
  std::string pre = "\\begindata{text,1}\nbefore\n";
  std::string good1 = "\\begindata{table,2}\n\\cols{2}\n\\enddata{table,2}\n";
  std::string victim = "\\begindata{drawing,3}\npayload bytes\n\\enddata{drawing,3}\n";
  std::string good2 = "\\begindata{raster,4}\nbits\n\\enddata{raster,4}\n";
  std::string post = "after\n\\enddata{text,1}\n";
  std::string doc = pre + good1 + victim + good2 + post;

  // Mangle the victim's begin marker (drop the ",id").
  FaultPlan plan;
  plan.faults.push_back(
      Fault{FaultKind::kMarkerMangle, pre.size() + good1.size(), 0, ""});
  FaultInjector injector(plan);
  std::string corrupted = injector.Corrupt(doc);
  ASSERT_GT(injector.damage_bytes(), 0u);

  SalvageReport report;
  DataStreamSalvager salvager;
  std::string out = salvager.Salvage(corrupted, &report);
  EXPECT_NE(out.find(good1), std::string::npos);
  EXPECT_NE(out.find(good2), std::string::npos);
  EXPECT_NE(out.find("before"), std::string::npos);
  EXPECT_NE(out.find("after"), std::string::npos);
  // The victim's payload is still present (inside the quarantine).
  EXPECT_NE(out.find("payload bytes"), std::string::npos);
}

// ---- FaultInjector determinism ---------------------------------------------

TEST(FaultInjector, SameSeedSamePlanSameDamage) {
  std::string doc = GenerateSerializedDocument(5);
  FaultPlan plan_a = FaultPlan::FromSeed(42, doc.size());
  FaultPlan plan_b = FaultPlan::FromSeed(42, doc.size());
  EXPECT_EQ(plan_a.ToString(), plan_b.ToString());
  FaultInjector inj_a(plan_a);
  FaultInjector inj_b(plan_b);
  EXPECT_EQ(inj_a.Corrupt(doc), inj_b.Corrupt(doc));
  FaultPlan plan_c = FaultPlan::FromSeed(43, doc.size());
  FaultInjector inj_c(plan_c);
  EXPECT_NE(inj_a.Corrupt(doc), inj_c.Corrupt(doc));
}

// ---- Writer diagnostics -----------------------------------------------------

TEST(WriterDiagnostics, UnbalancedWriterReportsCorrupt) {
  std::ostringstream out;
  DataStreamWriter writer(out);
  writer.BeginData("text");
  EXPECT_FALSE(writer.Finish().ok());
  writer.EndData();
  EXPECT_TRUE(writer.Finish().ok());
}

TEST(WriterDiagnostics, DuplicateCallerIdIsDiagnosed) {
  std::ostringstream out;
  DataStreamWriter writer(out);
  writer.BeginDataWithId("text", 7);
  writer.BeginDataWithId("table", 7);
  writer.EndData();
  writer.EndData();
  EXPECT_FALSE(writer.diagnostics().empty());
  EXPECT_FALSE(writer.Finish().ok());
}

// ---- Loader degradation ------------------------------------------------------

class LoaderFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterStandardModules();
    Loader::Instance().UnloadAllForTest();
    Loader::Instance().ClearFailureLog();
  }
  void TearDown() override {
    Loader::Instance().SetLoadFaultHook(nullptr);
    Loader::Instance().set_retry_policy(Loader::RetryPolicy{});
    Loader::Instance().ClearFailureLog();
  }
};

TEST_F(LoaderFaultTest, TransientFailureIsRetriedAndSucceeds) {
  FaultPlan plan = FaultPlan::FromSeed(1, 0, 0, /*load_failures=*/1);
  FaultInjector injector(plan);
  Loader::Instance().SetLoadFaultHook(injector.MakeLoadFaultHook());
  // Default policy allows 3 attempts; the plan injects at most 3 consecutive
  // failures shared across modules, so a couple of Requires get through.
  Loader::Instance().set_retry_policy(Loader::RetryPolicy{4, 100});
  EXPECT_TRUE(Loader::Instance().Require("table"));
  EXPECT_TRUE(Loader::Instance().IsLoaded("table"));
  EXPECT_TRUE(Loader::Instance().failure_log().empty());
}

TEST_F(LoaderFaultTest, ExhaustedRetriesAreRecordedWithBackoff) {
  Loader::Instance().SetLoadFaultHook(
      [](std::string_view, int) { return true; });  // Every attempt fails.
  Loader::Instance().set_retry_policy(Loader::RetryPolicy{3, 500});
  EXPECT_FALSE(Loader::Instance().Require("table"));
  EXPECT_FALSE(Loader::Instance().IsLoaded("table"));
  ASSERT_FALSE(Loader::Instance().failure_log().empty());
  const Loader::FailureRecord& failure = Loader::Instance().failure_log().back();
  EXPECT_EQ(failure.attempts, 3);
  EXPECT_EQ(failure.simulated_backoff_us, 500u + 1000u);  // 2 retries.
  // EnsureClass degrades to nullptr, not a crash.
  EXPECT_EQ(Loader::Instance().EnsureClass("tableview"), nullptr);
}

TEST_F(LoaderFaultTest, RetryMetricsPublishDoublingBackoff) {
  // The registry half of the retry story: every retry bumps
  // class.module.retry, and class.module.simulated_backoff_us accumulates
  // the simulated sleep — which must double per retry within one load.
  observability::Counter& retry =
      observability::MetricsRegistry::Instance().counter("class.module.retry");
  observability::Gauge& backoff = observability::MetricsRegistry::Instance().gauge(
      "class.module.simulated_backoff_us");
  retry.Reset();
  backoff.Reset();
  Loader::Instance().SetLoadFaultHook(
      [](std::string_view, int) { return true; });  // Every attempt fails.

  // Walk max_attempts 2..4 over dependency-free modules.  k retries at
  // initial backoff 500us contribute 500 * (2^k - 1): 500, 1500, 3500 —
  // each module's delta is exactly double-per-retry or the sums don't land.
  const char* modules[] = {"table", "equation", "text"};
  uint64_t expected_retries = 0;
  int64_t expected_backoff = 0;
  for (int attempts = 2; attempts <= 4; ++attempts) {
    Loader::Instance().set_retry_policy(Loader::RetryPolicy{attempts, 500});
    EXPECT_FALSE(Loader::Instance().Require(modules[attempts - 2]));
    uint64_t retries = static_cast<uint64_t>(attempts - 1);
    expected_retries += retries;
    expected_backoff += static_cast<int64_t>(500u * ((1u << retries) - 1u));
    EXPECT_EQ(retry.value(), expected_retries) << attempts << " attempts";
    EXPECT_EQ(backoff.value(), expected_backoff) << attempts << " attempts";
  }

  // The same totals land in the failure log, per module.
  ASSERT_EQ(Loader::Instance().failure_log().size(), 3u);
  EXPECT_EQ(Loader::Instance().failure_log()[0].simulated_backoff_us, 500u);
  EXPECT_EQ(Loader::Instance().failure_log()[1].simulated_backoff_us, 1500u);
  EXPECT_EQ(Loader::Instance().failure_log()[2].simulated_backoff_us, 3500u);
}

TEST_F(LoaderFaultTest, FailedEmbeddedViewDegradesToUnknownView) {
  ASSERT_TRUE(Loader::Instance().Require("text"));
  std::string doc =
      "\\begindata{text,1}\nsee \\begindata{table,2}\n\\dimensions{2,2}\n"
      "\\cell{0,0}\npayload\n\\enddata{table,2}\n"
      "\\view{tableview,2}\\enddata{text,1}\n";
  ReadContext ctx;
  std::unique_ptr<DataObject> read = ReadDocument(doc, &ctx);
  TextData* data = ObjectCast<TextData>(read.get());
  ASSERT_NE(data, nullptr);

  // Reading the document loaded the table module (to build the TableData);
  // unload it again, then make all further loads fail: when the view tree
  // is built, "tableview" is unavailable.
  Loader::Instance().UnloadAllForTest();
  Loader::Instance().SetLoadFaultHook([](std::string_view, int) { return true; });

  auto window = std::make_unique<ItcWindow>(300, 200);
  InteractionManager im(std::move(window));
  TextView view;
  view.SetDataObject(data);
  im.SetChild(&view);
  im.RunOnce();

  ASSERT_EQ(view.children().size(), 1u);
  UnknownView* placeholder = ObjectCast<UnknownView>(view.children()[0]);
  ASSERT_NE(placeholder, nullptr);
  EXPECT_EQ(placeholder->MissingType(), "tableview");
  // The data object (and its save path) is intact despite the degraded view.
  std::string resaved = WriteDocument(*data);
  EXPECT_NE(resaved.find("\\begindata{table,"), std::string::npos);
  EXPECT_NE(resaved.find("\\dimensions{2,2}"), std::string::npos);
  im.SetChild(nullptr);
}

// ---- Window-system connection drops ------------------------------------------

template <typename WindowT>
void ExerciseConnectionDrop() {
  WindowT window(200, 100);
  window.GetGraphic()->FillRect(Rect{0, 0, 200, 100}, kBlack);
  window.Flush();
  while (window.HasEvent()) {
    window.NextEvent();
  }

  window.InjectConnectionDrop();
  EXPECT_FALSE(window.connected());
  EXPECT_EQ(window.drop_count(), 1);
  // The display forgot us.
  EXPECT_EQ(window.Display().GetPixel(5, 5), kWhite);

  // The event loop keeps running: the next poll reconnects and the first
  // event delivered is a full-window expose.
  InputEvent event = window.NextEvent();
  EXPECT_TRUE(window.connected());
  EXPECT_EQ(window.reconnect_count(), 1);
  EXPECT_EQ(event.type, EventType::kExpose);
  EXPECT_EQ(event.rect.width, 200);
  EXPECT_EQ(event.rect.height, 100);

  // Repainting after the expose restores the display.
  window.GetGraphic()->FillRect(Rect{0, 0, 200, 100}, kBlack);
  window.Flush();
  EXPECT_EQ(window.Display().GetPixel(5, 5), kBlack);
}

TEST(WmRobustness, ItcWindowSurvivesConnectionDrop) { ExerciseConnectionDrop<ItcWindow>(); }

TEST(WmRobustness, X11WindowSurvivesConnectionDrop) { ExerciseConnectionDrop<X11Window>(); }

TEST(WmRobustness, EventsInjectedWhileDisconnectedAreLost) {
  ItcWindow window(100, 100);
  window.InjectConnectionDrop();
  window.Inject(InputEvent::MouseAt(EventType::kMouseDown, Point{5, 5}));
  window.Reconnect();
  // Only the replayed expose is queued; the mouse event died with the wire.
  InputEvent event = window.NextEvent();
  EXPECT_EQ(event.type, EventType::kExpose);
  EXPECT_FALSE(window.HasEvent());
}

TEST(WmRobustness, FullUpdateSurvivesDropDuringSession) {
  // End-to-end: an interaction manager keeps working across a drop.
  auto owned = std::make_unique<ItcWindow>(300, 200);
  ItcWindow* window = owned.get();
  InteractionManager im(std::move(owned));
  TextData data;
  data.InsertString(0, "hello robust world\n");
  TextView view;
  view.SetDataObject(&data);
  im.SetChild(&view);
  im.RunOnce();

  window->InjectConnectionDrop();
  im.RunOnce();  // Pumps NextEvent: reconnect + expose + repaint.
  EXPECT_TRUE(window->connected());
  EXPECT_EQ(window->reconnect_count(), 1);
  im.SetChild(nullptr);
}

}  // namespace
}  // namespace atk
