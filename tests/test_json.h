// Minimal strict JSON parser shared by test binaries.
//
// Just enough to validate JSON emitted by the toolkit (TraceExport's
// Perfetto stream, the bench metric lines) without an external dependency:
// objects, arrays, strings with the standard escapes, numbers, booleans,
// null.  Strictness matters — a trailing comma or stray byte must fail the
// test, not slide through into a downstream consumer.
//
// Header-only on purpose: test binaries are separate executables and this
// stays out of the shipped libraries.

#ifndef ATK_TESTS_TEST_JSON_H_
#define ATK_TESTS_TEST_JSON_H_

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace atk {
namespace testjson {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;              // kArray
  std::map<std::string, JsonValue> members;  // kObject

  const JsonValue* Get(const std::string& key) const {
    auto it = members.find(key);
    return it == members.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out) {
    if (!ParseValue(out)) {
      return false;
    }
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return false;
    }
    char c = text_[pos_];
    if (c == '{') {
      return ParseObject(out);
    }
    if (c == '[') {
      return ParseArray(out);
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (text_.substr(pos_, 4) == "true") {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    if (text_.substr(pos_, 4) == "null") {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    out->kind = JsonValue::Kind::kNumber;
    return ParseNumber(&out->number);
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{')) {
      return false;
    }
    if (Consume('}')) {
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      if (!Consume(':')) {
        return false;
      }
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->members[key] = std::move(value);
      if (Consume(',')) {
        continue;
      }
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[')) {
      return false;
    }
    if (Consume(']')) {
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->items.push_back(std::move(value));
      if (Consume(',')) {
        continue;
      }
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // Raw control characters must have been escaped.
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        return false;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          *out += esc;
          break;
        case 'b':
        case 'f':
        case 'n':
        case 'r':
        case 't':
          *out += '?';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return false;
          }
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_ + static_cast<size_t>(i)];
            if (!std::isxdigit(static_cast<unsigned char>(h))) {
              return false;
            }
          }
          pos_ += 4;
          *out += '?';
          break;
        }
        default:
          return false;
      }
    }
    return false;  // Unterminated.
  }

  bool ParseNumber(double* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    size_t digits = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == digits) {
      return false;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      size_t frac = pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == frac) {
        return false;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      size_t exp = pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == exp) {
        return false;
      }
    }
    *out = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr);
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

inline bool ParseJson(std::string_view text, JsonValue* out) {
  return JsonParser(text).Parse(out);
}

}  // namespace testjson
}  // namespace atk

#endif  // ATK_TESTS_TEST_JSON_H_
