// Document-server tests (PR 6): frame codec, reliable channel, transport
// fault plans, the client/server protocol, and the 64-seed differential
// fault sweep asserting the §1 sharing contract — every replica byte-equal
// to the server's document once the system quiesces.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/base/data_object.h"
#include "src/observability/observability.h"
#include "src/observability/trace_export.h"
#include "src/robustness/fault_injector.h"
#include "src/server/channel.h"
#include "src/server/client_session.h"
#include "src/server/document_server.h"
#include "src/server/flow_trace.h"
#include "src/server/frame.h"
#include "src/server/protocol.h"
#include "src/server/reactor.h"
#include "src/server/transport_sim.h"
#include "src/workload/session_trace.h"

namespace atk {
namespace server {
namespace {

// ---------------------------------------------------------------- Frames --

TEST(Frame, EncodeDecodeRoundTrip) {
  Frame frame;
  frame.type = FrameType::kEdit;
  frame.session = 7;
  frame.seq = 42;
  frame.ack = 41;
  frame.payload = "version 0\ntick 3\nop i 5 3\nabc";
  std::string wire = EncodeFrame(frame);
  EXPECT_EQ(wire.size(), kFrameHeaderSize + frame.payload.size());

  FrameDecoder decoder;
  decoder.Feed(wire);
  Frame out;
  ASSERT_TRUE(decoder.Poll(&out));
  EXPECT_EQ(out.type, FrameType::kEdit);
  EXPECT_EQ(out.session, 7u);
  EXPECT_EQ(out.seq, 42u);
  EXPECT_EQ(out.ack, 41u);
  EXPECT_EQ(out.payload, frame.payload);
  EXPECT_FALSE(decoder.Poll(&out));
}

TEST(Frame, DecoderReassemblesSplitFeeds) {
  Frame frame;
  frame.type = FrameType::kSnapshot;
  frame.seq = 1;
  frame.payload = std::string(1000, 'x');
  std::string wire = EncodeFrame(frame);

  FrameDecoder decoder;
  Frame out;
  for (size_t i = 0; i < wire.size(); i += 7) {
    decoder.Feed(wire.substr(i, 7));
  }
  ASSERT_TRUE(decoder.Poll(&out));
  EXPECT_EQ(out.payload, frame.payload);
}

TEST(Frame, DecoderResyncsPastGarbage) {
  Frame frame;
  frame.type = FrameType::kAck;
  frame.ack = 9;
  std::string wire = EncodeFrame(frame);

  FrameDecoder decoder;
  decoder.Feed("garbage bytes with an A inside");
  decoder.Feed(wire);
  Frame out;
  ASSERT_TRUE(decoder.Poll(&out));
  EXPECT_EQ(out.type, FrameType::kAck);
  EXPECT_EQ(out.ack, 9u);
  EXPECT_GT(decoder.skipped_bytes(), 0u);
}

TEST(Frame, DecoderRejectsCorruptedFrameThenRecovers) {
  Frame a;
  a.type = FrameType::kEdit;
  a.seq = 1;
  a.payload = "damaged in transit";
  std::string wire_a = EncodeFrame(a);
  wire_a[kFrameHeaderSize + 3] ^= 0x20;  // Flip one payload bit.

  Frame b;
  b.type = FrameType::kEdit;
  b.seq = 2;
  b.payload = "intact";

  FrameDecoder decoder;
  decoder.Feed(wire_a);
  decoder.Feed(EncodeFrame(b));
  Frame out;
  ASSERT_TRUE(decoder.Poll(&out));
  EXPECT_EQ(out.seq, 2u);
  EXPECT_EQ(out.payload, "intact");
  EXPECT_EQ(decoder.corrupt_frames(), 1u);
}

TEST(Frame, CorruptedLengthPrefixDoesNotWedgeTheDecoder) {
  // A flipped high byte in the length field once parked the decoder waiting
  // for a phantom multi-megabyte payload, silently swallowing every later
  // frame until reconnect.  The header CRC must catch it up front.
  Frame a;
  a.type = FrameType::kUpdate;
  a.seq = 5;
  a.payload = "version 6 tick 9\ni 0 2\nhi";
  std::string wire_a = EncodeFrame(a);
  wire_a[6] ^= 0x7F;  // Length now claims ~8MB.

  Frame b;
  b.type = FrameType::kUpdate;
  b.seq = 6;
  b.payload = "version 7 tick 10\nd 3 1\n";

  FrameDecoder decoder;
  decoder.Feed(wire_a);
  decoder.Feed(EncodeFrame(b));
  Frame out;
  ASSERT_TRUE(decoder.Poll(&out));
  EXPECT_EQ(out.seq, 6u);
  EXPECT_EQ(decoder.corrupt_frames(), 1u);
}

TEST(Frame, Crc32MatchesKnownVector) {
  // IEEE CRC32 of "123456789" is the classic check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
}

// ----------------------------------------------------------- Fault plans --

TEST(TransportFaultPlan, FromSpecParsesEveryKey) {
  TransportFaultPlan plan = TransportFaultPlan::FromSpec(
      "seed=7,drop=4,dup=2,corrupt=3,payload=1,delay=5,conn=1,rate=0.25");
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_EQ(plan.drops, 4);
  EXPECT_EQ(plan.duplicates, 2);
  EXPECT_EQ(plan.corruptions, 3);
  EXPECT_EQ(plan.payload_corruptions, 1);
  EXPECT_EQ(plan.delays, 5);
  EXPECT_EQ(plan.conn_drops, 1);
  EXPECT_NEAR(plan.rate, 0.25, 1e-9);
}

TEST(TransportFaultPlan, FromSeedIsDeterministicAndBudgeted) {
  TransportFaultPlan a = TransportFaultPlan::FromSeed(11);
  TransportFaultPlan b = TransportFaultPlan::FromSeed(11);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_GE(a.drops, 2);
  EXPECT_LE(a.drops, 6);
  EXPECT_GE(a.rate, 0.02);
  EXPECT_LE(a.rate, 0.12);
}

TEST(TransportFaultInjector, BudgetsAreConsumedExactlyOnce) {
  TransportFaultPlan plan = TransportFaultPlan::Clean();
  plan.seed = 3;
  plan.drops = 2;
  plan.rate = 1.0;
  TransportFaultInjector injector(plan);
  int drops = 0;
  for (int i = 0; i < 100; ++i) {
    if (injector.NextFate(false).kind == TransportFaultKind::kDrop) {
      ++drops;
    }
  }
  EXPECT_EQ(drops, 2);
  EXPECT_EQ(injector.injected(TransportFaultKind::kDrop), 2u);
}

TEST(TransportFaultInjector, PayloadCorruptionOnlyHitsSnapshotFrames) {
  TransportFaultPlan plan = TransportFaultPlan::Clean();
  plan.seed = 5;
  plan.payload_corruptions = 1;
  plan.rate = 1.0;
  TransportFaultInjector injector(plan);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(injector.NextFate(false).kind, TransportFaultKind::kDeliver);
  }
  EXPECT_EQ(injector.NextFate(true).kind, TransportFaultKind::kPayloadCorrupt);
}

// -------------------------------------------------------------- Channels --

// Drives both channel halves over a link until `ticks` have elapsed.
std::vector<Frame> PumpBoth(Channel& client, Channel& server, SimulatedLink& link,
                            int ticks, std::vector<Frame>* to_client = nullptr) {
  std::vector<Frame> to_server;
  for (int i = 0; i < ticks; ++i) {
    for (Frame& f : client.Pump(link.now())) {
      if (to_client != nullptr) {
        to_client->push_back(std::move(f));
      }
    }
    for (Frame& f : server.Pump(link.now())) {
      to_server.push_back(std::move(f));
    }
    link.Tick();
  }
  return to_server;
}

TEST(Channel, ReliableDeliveryInOrderOverCleanLink) {
  SimulatedLink link;
  Channel client(&link, LinkDir::kClientToServer);
  Channel server(&link, LinkDir::kServerToClient);
  for (int i = 0; i < 10; ++i) {
    Frame f;
    f.type = FrameType::kEdit;
    f.payload = "edit " + std::to_string(i);
    client.SendReliable(std::move(f), link.now());
  }
  std::vector<Frame> delivered = PumpBoth(client, server, link, 8);
  ASSERT_EQ(delivered.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(delivered[i].payload, "edit " + std::to_string(i));
    EXPECT_EQ(delivered[i].seq, static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ(client.pending(), 0u);  // All acked.
  EXPECT_EQ(client.stats().retransmits, 0u);
}

TEST(Channel, RetransmitsDroppedFrameWithBackoff) {
  TransportFaultPlan plan = TransportFaultPlan::Clean();
  plan.seed = 9;
  plan.drops = 1;
  plan.rate = 1.0;
  SimulatedLink link(plan);
  Channel client(&link, LinkDir::kClientToServer);
  Channel server(&link, LinkDir::kServerToClient);
  Frame f;
  f.type = FrameType::kEdit;
  f.payload = "only";
  client.SendReliable(std::move(f), link.now());  // Dropped by the budget.
  // Both directions carry a one-drop budget, so the ack can be eaten too;
  // enough ticks for a second retransmit round.
  std::vector<Frame> delivered = PumpBoth(client, server, link, 40);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].payload, "only");
  EXPECT_GE(client.stats().retransmits, 1u);
  EXPECT_EQ(client.pending(), 0u);
}

TEST(Channel, DuplicatesAndReordersAreAbsorbed) {
  TransportFaultPlan plan = TransportFaultPlan::Clean();
  plan.seed = 21;
  plan.duplicates = 3;
  plan.delays = 3;
  plan.rate = 0.5;
  SimulatedLink link(plan);
  Channel client(&link, LinkDir::kClientToServer);
  Channel server(&link, LinkDir::kServerToClient);
  for (int i = 0; i < 20; ++i) {
    Frame f;
    f.type = FrameType::kEdit;
    f.payload = std::to_string(i);
    client.SendReliable(std::move(f), link.now());
  }
  std::vector<Frame> delivered = PumpBoth(client, server, link, 60);
  ASSERT_EQ(delivered.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(delivered[i].payload, std::to_string(i));
  }
}

TEST(Channel, ExhaustedRetriesMarkChannelBroken) {
  SimulatedLink link;
  Channel client(&link, LinkDir::kClientToServer, {});
  Frame f;
  f.type = FrameType::kEdit;
  f.payload = "void";
  link.Sever();  // Nothing ever arrives or is acked.
  client.SendReliable(std::move(f), link.now());
  for (int i = 0; i < 2000 && !client.broken(); ++i) {
    client.Pump(link.now());
    link.Tick();
  }
  EXPECT_TRUE(client.broken());
}

TEST(Channel, BackoffDoublesPerRetry) {
  // A severed link acks nothing: every retransmit fires exactly on its
  // backoff deadline, so the gaps between consecutive send ticks must be
  // base, 2*base, 4*base, ... capped at max_backoff_ticks.
  SimulatedLink link;
  link.Sever();
  Channel::Config config;
  config.retransmit_base_ticks = 4;
  config.max_backoff_ticks = 64;
  config.max_retries = 6;
  Channel client(&link, LinkDir::kClientToServer, config);
  Frame f;
  f.type = FrameType::kEdit;
  client.SendReliable(std::move(f), link.now());
  uint64_t last_sends = client.stats().sent + client.stats().retransmits;
  uint64_t last_tick = link.now();
  std::vector<uint64_t> gaps;
  for (int i = 0; i < 400 && !client.broken(); ++i) {
    client.Pump(link.now());
    uint64_t sends = client.stats().sent + client.stats().retransmits;
    if (sends > last_sends) {
      gaps.push_back(link.now() - last_tick);
      last_tick = link.now();
      last_sends = sends;
    }
    link.Tick();
  }
  ASSERT_EQ(gaps.size(), 6u);  // max_retries retransmissions, then broken.
  EXPECT_EQ(gaps[0], 4u);
  EXPECT_EQ(gaps[1], 8u);
  EXPECT_EQ(gaps[2], 16u);
  EXPECT_EQ(gaps[3], 32u);
  EXPECT_EQ(gaps[4], 64u);
  EXPECT_EQ(gaps[5], 64u);  // Capped.
}

TEST(Channel, RttEstimateSamplesCleanAcksOnly) {
  SimulatedLink link;
  Channel client(&link, LinkDir::kClientToServer);
  Channel server(&link, LinkDir::kServerToClient);
  EXPECT_FALSE(client.has_rtt()) << "no samples before the first ack";
  EXPECT_EQ(client.rtt_estimate_ticks(), 0u);
  for (int i = 0; i < 10; ++i) {
    Frame f;
    f.type = FrameType::kEdit;
    f.payload = "probe " + std::to_string(i);
    client.SendReliable(std::move(f), link.now());
  }
  PumpBoth(client, server, link, 20);
  ASSERT_TRUE(client.has_rtt());
  // One link tick each way, plus pump ordering slop: the EWMA must settle
  // on a small constant for a clean link, never zero and never wild.
  EXPECT_GE(client.rtt_estimate_ticks(), 1u);
  EXPECT_LE(client.rtt_estimate_ticks(), 16u);
}

TEST(Channel, RttKarnRuleSkipsRetransmittedFrames) {
  // One dropped frame forces a retransmit; the ack that finally arrives is
  // ambiguous (original or retry?) and per Karn's rule must NOT feed the
  // estimator.  With only that one frame in flight, no estimate forms.
  TransportFaultPlan plan = TransportFaultPlan::Clean();
  plan.seed = 9;
  plan.drops = 1;
  plan.rate = 1.0;
  SimulatedLink link(plan);
  Channel client(&link, LinkDir::kClientToServer);
  Channel server(&link, LinkDir::kServerToClient);
  Frame f;
  f.type = FrameType::kEdit;
  f.payload = "only";
  client.SendReliable(std::move(f), link.now());  // Eaten by the drop budget.
  std::vector<Frame> delivered = PumpBoth(client, server, link, 40);
  ASSERT_EQ(delivered.size(), 1u);
  ASSERT_GE(client.stats().retransmits, 1u);
  EXPECT_EQ(client.pending(), 0u);
  EXPECT_FALSE(client.has_rtt()) << "ambiguous ack after a retransmit must not be sampled";
}

// -------------------------------------------------------------- Protocol --

TEST(Protocol, EditPayloadFlowEnvelopeIsOptionalAndRoundTrips) {
  EditPayload payload;
  payload.version = 4;
  payload.sent_tick = 9;
  payload.op.kind = EditOp::Kind::kInsert;
  payload.op.pos = 2;
  payload.op.len = 3;
  payload.op.text = "abc";

  // Untraced payloads stay byte-identical to the pre-tracing wire format:
  // no flow/origin lines appear when flow == 0.
  std::string untraced = EncodeEdit(payload);
  EXPECT_EQ(untraced.find("flow "), std::string::npos);
  EXPECT_EQ(untraced.find("origin "), std::string::npos);
  EditPayload back;
  ASSERT_TRUE(DecodeEdit(untraced, &back));
  EXPECT_EQ(back.flow, 0u);
  EXPECT_EQ(back.origin_ns, 0u);

  payload.flow = 77;
  payload.origin_ns = 123456789;
  std::string traced = EncodeEdit(payload);
  EXPECT_NE(traced.find("flow 77\norigin 123456789\n"), std::string::npos);
  EditPayload traced_back;
  ASSERT_TRUE(DecodeEdit(traced, &traced_back));
  EXPECT_EQ(traced_back.flow, 77u);
  EXPECT_EQ(traced_back.origin_ns, 123456789u);
  EXPECT_EQ(traced_back.op.text, "abc");
  EXPECT_EQ(traced_back.version, 4u);
  EXPECT_EQ(traced_back.sent_tick, 9u);

  // A flow line without its origin partner is a malformed envelope.
  std::string torn = traced;
  size_t origin_at = torn.find("origin 123456789\n");
  ASSERT_NE(origin_at, std::string::npos);
  torn.erase(origin_at, std::string("origin 123456789\n").size());
  EditPayload rejected;
  EXPECT_FALSE(DecodeEdit(torn, &rejected));
}

// --------------------------------------------------------------- Reactor --

TEST(Reactor, FiresReadySourcesAndDueTimers) {
  Reactor reactor;
  bool ready = false;
  int fired = 0;
  reactor.AddSource([&] { return ready; }, [&] { ++fired; });
  reactor.PumpOnce();
  EXPECT_EQ(fired, 0);
  ready = true;
  reactor.PumpOnce();
  EXPECT_EQ(fired, 1);

  int timer_fired = 0;
  reactor.AddTimer(10, [&] { ++timer_fired; });
  reactor.Advance(9);
  EXPECT_EQ(timer_fired, 0);
  reactor.Advance(10);
  EXPECT_EQ(timer_fired, 1);
  reactor.Advance(100);
  EXPECT_EQ(timer_fired, 1);  // One-shot.
}

// ------------------------------------------------------------- Sessions ---

struct Harness {
  DocumentServer server;
  std::vector<std::unique_ptr<SimulatedLink>> links;
  std::vector<std::unique_ptr<ClientSession>> clients;

  explicit Harness(DocumentServer::Config config = DocumentServer::Config())
      : server(config) {}

  ClientSession* AddClient(const std::string& name, const std::string& doc,
                           const TransportFaultPlan& plan = TransportFaultPlan::Clean(),
                           ClientSession::Config config = ClientSession::Config()) {
    links.push_back(std::make_unique<SimulatedLink>(plan));
    server.AttachLink(links.back().get());
    clients.push_back(
        std::make_unique<ClientSession>(name, doc, links.back().get(), config));
    clients.back()->Connect(links.back()->now());
    return clients.back().get();
  }

  void Step() {
    for (size_t i = 0; i < clients.size(); ++i) {
      clients[i]->Pump(links[i]->now());
    }
    server.PumpOnce();
    for (auto& link : links) {
      link->Tick();
    }
  }

  // True when every client is synced and nothing is in flight anywhere.
  // The server's unacked frames count too: an update sitting out a long
  // retransmit backoff leaves the wire silent for tens of ticks while the
  // system is anything but done.
  bool Quiesced() const {
    // An undelivered eviction notice means some client still holds a stale
    // replica it believes is synced; the notice retry may be a full
    // interval away with the wire silent in between.
    if (server.pending_frames() != 0 || server.pending_evictions() != 0) {
      return false;
    }
    for (size_t i = 0; i < clients.size(); ++i) {
      if (!clients[i]->attached() || !clients[i]->synced() ||
          clients[i]->channel().pending() != 0) {
        return false;
      }
      if (links[i]->HasDeliverable(LinkDir::kClientToServer) ||
          links[i]->HasDeliverable(LinkDir::kServerToClient)) {
        return false;
      }
    }
    return true;
  }

  // Steps until quiesced (with a settle tail); asserts it happens in time.
  void Settle(int max_ticks = 30000) {
    int quiet = 0;
    for (int i = 0; i < max_ticks; ++i) {
      Step();
      quiet = Quiesced() ? quiet + 1 : 0;
      if (quiet >= 8) {
        return;
      }
    }
    FAIL() << "system did not quiesce within " << max_ticks << " ticks";
  }
};

std::unique_ptr<TextData> MakeDoc(const std::string& text) {
  auto doc = std::make_unique<TextData>();
  doc->SetText(text);
  return doc;
}

TEST(DocumentServer, SessionsAttachAndReceiveSnapshot) {
  Harness h;
  h.server.HostDocument("notes", MakeDoc("hello shared world"));
  ClientSession* a = h.AddClient("alice", "notes");
  ClientSession* b = h.AddClient("bob", "notes");
  h.Settle();
  EXPECT_EQ(h.server.session_count(), 2u);
  ASSERT_NE(a->replica(), nullptr);
  ASSERT_NE(b->replica(), nullptr);
  EXPECT_EQ(a->replica()->GetAllText(), "hello shared world");
  EXPECT_EQ(b->replica()->GetAllText(), "hello shared world");
  EXPECT_NE(a->session_id(), b->session_id());
}

TEST(DocumentServer, EditsFanOutToEverySession) {
  Harness h;
  h.server.HostDocument("notes", MakeDoc("shared"));
  ClientSession* a = h.AddClient("alice", "notes");
  ClientSession* b = h.AddClient("bob", "notes");
  h.Settle();

  EditOp op;
  op.kind = EditOp::Kind::kInsert;
  op.pos = 0;
  op.len = 5;
  op.text = "very ";
  a->SubmitEdit(op);
  h.Settle();

  EXPECT_EQ(h.server.document("notes")->GetAllText(), "very shared");
  EXPECT_EQ(a->replica()->GetAllText(), "very shared");
  EXPECT_EQ(b->replica()->GetAllText(), "very shared");
  EXPECT_EQ(a->applied_version(), h.server.version("notes"));
  EXPECT_EQ(b->applied_version(), h.server.version("notes"));
  EXPECT_GE(h.server.stats().updates_fanned_out, 2u);
}

TEST(DocumentServer, ProgrammaticMutationFansOutThroughObserver) {
  // The fan-out rides the §2 observer mechanism, so a direct mutation of the
  // hosted document — no client involved — reaches every replica too.
  Harness h;
  TextData* doc = h.server.HostDocument("notes", MakeDoc("base"));
  ClientSession* a = h.AddClient("alice", "notes");
  h.Settle();
  doc->InsertString(4, " camp");
  h.Settle();
  EXPECT_EQ(a->replica()->GetAllText(), "base camp");
}

TEST(DocumentServer, NonIncrementalChangeEscalatesToSnapshot) {
  Harness h;
  TextData* doc = h.server.HostDocument("notes", MakeDoc("old"));
  ClientSession* a = h.AddClient("alice", "notes");
  h.Settle();
  uint64_t snapshots_before = h.server.stats().snapshots_sent;
  doc->SetText("entirely new content");  // kModified: not a text op.
  h.Settle();
  EXPECT_GT(h.server.stats().snapshots_sent, snapshots_before);
  EXPECT_EQ(a->replica()->GetAllText(), "entirely new content");
}

TEST(DocumentServer, EmbeddedObjectInsertEscalatesToSnapshot) {
  Harness h;
  TextData* doc = h.server.HostDocument("notes", MakeDoc("report: "));
  ClientSession* a = h.AddClient("alice", "notes");
  h.Settle();
  doc->InsertObject(8, MakeDoc("inner table"));
  h.Settle();
  // The replica resynced through a snapshot, so the anchor and the embedded
  // child both survive; full §5 round-trip equality.
  EXPECT_EQ(WriteDocument(*a->replica()), WriteDocument(*h.server.document("notes")));
  EXPECT_EQ(a->replica()->embedded_count(), 1u);
}

TEST(DocumentServer, UnknownDocumentIsRefused) {
  Harness h;
  h.server.HostDocument("notes", MakeDoc("x"));
  ClientSession::Config config;
  config.auto_reconnect = false;
  ClientSession* a =
      h.AddClient("alice", "no-such-doc", TransportFaultPlan::Clean(), config);
  for (int i = 0; i < 200; ++i) {
    h.Step();
  }
  EXPECT_EQ(a->state(), ClientSession::State::kEvicted);
  EXPECT_NE(a->evict_reason().find("no such document"), std::string::npos);
}

TEST(DocumentServer, HelloRetriesSurviveLossyAttach) {
  TransportFaultPlan plan = TransportFaultPlan::Clean();
  plan.seed = 13;
  plan.drops = 3;
  plan.rate = 1.0;  // The first three frames each way are eaten.
  Harness h;
  h.server.HostDocument("notes", MakeDoc("persist"));
  ClientSession* a = h.AddClient("alice", "notes", plan);
  h.Settle();
  EXPECT_TRUE(a->attached());
  EXPECT_GE(a->stats().hello_retries, 1u);
  EXPECT_EQ(a->replica()->GetAllText(), "persist");
}

TEST(DocumentServer, ConnectionDropForcesReconnectAndResync) {
  TransportFaultPlan plan = TransportFaultPlan::Clean();
  plan.seed = 17;
  plan.conn_drops = 1;
  plan.rate = 0.2;
  Harness h;
  h.server.HostDocument("notes", MakeDoc("to be resynced"));
  ClientSession* a = h.AddClient("alice", "notes", plan);
  EditOp op;
  op.kind = EditOp::Kind::kInsert;
  op.pos = 0;
  op.len = 4;
  op.text = "now ";
  // Keep editing so the conn-drop budget has traffic to fire on.
  for (int i = 0; i < 40; ++i) {
    if (i % 10 == 0) {
      a->SubmitEdit(op);
    }
    h.Step();
  }
  h.Settle();
  // Each direction carries its own conn-drop budget: one or two severs.
  EXPECT_GE(h.links[0]->sever_count(), 1);
  EXPECT_GE(a->stats().reconnects, 1u);
  EXPECT_EQ(a->replica()->GetAllText(), h.server.document("notes")->GetAllText());
}

TEST(DocumentServer, CorruptSnapshotIsSalvagedThenReplacedByCleanOne) {
  TransportFaultPlan plan = TransportFaultPlan::Clean();
  plan.seed = 23;
  plan.payload_corruptions = 1;
  plan.rate = 1.0;  // The first snapshot is damaged at rest.
  Harness h;
  h.server.HostDocument("notes", MakeDoc("precious content that must survive"));
  ClientSession* a = h.AddClient("alice", "notes", plan);
  h.Settle();
  EXPECT_GE(a->stats().snapshots_salvaged, 1u);
  EXPECT_FALSE(a->degraded());  // A clean snapshot eventually replaced it.
  EXPECT_EQ(a->replica()->GetAllText(), "precious content that must survive");
}

TEST(DocumentServer, SlowSessionIsEvictedWithDiagnostic) {
  DocumentServer::Config config;
  config.max_send_queue = 4;  // Tiny backpressure budget.
  config.channel.max_retries = 3;
  Harness h(config);
  TextData* doc = h.server.HostDocument("notes", MakeDoc("busy"));
  ClientSession* a = h.AddClient("alice", "notes");
  ClientSession* b = h.AddClient("bob", "notes");
  h.Settle();

  // Bob's link goes dark; Alice keeps editing.  Bob's send queue grows past
  // the budget (or his channel breaks) and the server must cut him loose
  // rather than let his queue grow forever.  Bob's client is NOT pumped — a
  // truly dead peer never re-dials — so the sever sticks.
  h.links[1]->Sever();
  for (int i = 0; i < 400 && h.server.stats().sessions_evicted == 0; ++i) {
    if (i % 5 == 0) {
      doc->InsertString(0, "x");
    }
    h.clients[0]->Pump(h.links[0]->now());
    h.server.PumpOnce();
    h.links[0]->Tick();
    h.links[1]->Tick();
  }
  EXPECT_GE(h.server.stats().sessions_evicted, 1u);
  ASSERT_FALSE(h.server.diagnostics().empty());
  EXPECT_EQ(h.server.diagnostics().front().code, StatusCode::kUnavailable);
  // Alice never stalled.
  EXPECT_TRUE(a->attached());
  (void)b;
}

TEST(DocumentServer, EvictedSessionReconnectsAndConverges) {
  DocumentServer::Config config;
  config.max_send_queue = 4;
  config.channel.max_retries = 3;
  Harness h(config);
  TextData* doc = h.server.HostDocument("notes", MakeDoc("start"));
  ClientSession* b = h.AddClient("bob", "notes");
  h.Settle();

  // Sever long enough to get Bob evicted, then let him come back.
  h.links[0]->Sever();
  for (int i = 0; i < 400 && h.server.stats().sessions_evicted == 0; ++i) {
    if (i % 5 == 0) {
      doc->InsertString(0, "y");
    }
    h.server.PumpOnce();
    h.links[0]->Tick();
  }
  ASSERT_GE(h.server.stats().sessions_evicted, 1u);
  h.Settle();  // Bob notices the dead link, reconnects, resyncs.
  EXPECT_TRUE(b->attached());
  EXPECT_EQ(b->replica()->GetAllText(), doc->GetAllText());
}

TEST(DocumentServer, PublishesPerSessionTelemetryGauges) {
  Harness h;
  h.server.HostDocument("notes", MakeDoc("shared"));
  ClientSession* a = h.AddClient("alice", "notes");
  h.AddClient("bob", "notes");
  h.Settle();
  EditOp op;
  op.kind = EditOp::Kind::kInsert;
  op.pos = 0;
  op.len = 5;
  op.text = "very ";
  a->SubmitEdit(op);
  h.Settle();

  // Every endpoint publishes the full gauge quartet derived from the
  // channel's seq/ack bookkeeping; after an acked fan-out the RTT EWMA has
  // real samples on at least the active sessions.
  observability::TraceSnapshot snap = observability::Snapshot();
  std::map<std::string, std::set<std::string>> endpoints;  // id -> suffixes
  int64_t max_rtt = 0;
  constexpr std::string_view kPrefix = "server.endpoint_";
  for (const auto& gauge : snap.gauges) {
    std::string_view name = gauge.name;
    if (name.substr(0, kPrefix.size()) != kPrefix) {
      continue;
    }
    std::string_view rest = name.substr(kPrefix.size());
    size_t dot = rest.find('.');
    ASSERT_NE(dot, std::string_view::npos) << gauge.name;
    endpoints[std::string(rest.substr(0, dot))].insert(std::string(rest.substr(dot + 1)));
    if (rest.substr(dot + 1) == "rtt_ticks") {
      max_rtt = std::max(max_rtt, gauge.value);
    }
  }
  EXPECT_GE(endpoints.size(), 2u) << "one gauge set per attached session";
  for (const auto& [id, suffixes] : endpoints) {
    EXPECT_TRUE(suffixes.count("rtt_ticks")) << "endpoint " << id;
    EXPECT_TRUE(suffixes.count("retransmits")) << "endpoint " << id;
    EXPECT_TRUE(suffixes.count("queue_depth")) << "endpoint " << id;
    EXPECT_TRUE(suffixes.count("epoch")) << "endpoint " << id;
  }
  EXPECT_GE(max_rtt, 1) << "acked updates must have fed the RTT estimator";
}

// ------------------------------------------------- The differential sweep --

// Runs one seeded scenario: N clients, a seeded edit trace, a seeded
// transport fault plan on every link, driven until quiescence.  Asserts the
// sharing contract: every replica byte-identical to the server's document.
void RunSeededScenario(uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  SessionTraceSpec spec;
  spec.seed = seed;
  spec.sessions = 4;
  spec.steps = 48;
  spec.initial_size = 192;
  SessionTrace trace = BuildSessionTrace(spec);

  Harness h;
  h.server.HostDocument("shared", MakeDoc(trace.initial_text));
  for (int i = 0; i < spec.sessions; ++i) {
    h.AddClient("client-" + std::to_string(i), "shared",
                TransportFaultPlan::FromSeed(seed * 1000 + i));
  }

  size_t next_step = 0;
  int guard = 0;
  while (next_step < trace.steps.size()) {
    ASSERT_LT(++guard, 60000) << "trace feed did not complete";
    const TraceStep& step = trace.steps[next_step];
    // Feed each step once its client is synced, one step per tick.
    if (h.clients[step.session]->synced()) {
      EditOp op;
      op.kind = step.insert ? EditOp::Kind::kInsert : EditOp::Kind::kDelete;
      op.pos = step.pos;
      op.len = step.len;
      op.text = step.text;
      h.clients[step.session]->SubmitEdit(op);
      ++next_step;
    }
    h.Step();
  }
  h.Settle(60000);

  const TextData* authoritative = h.server.document("shared");
  ASSERT_NE(authoritative, nullptr);
  std::string server_text = authoritative->GetAllText();
  std::string server_bytes = WriteDocument(*authoritative);
  for (int i = 0; i < spec.sessions; ++i) {
    SCOPED_TRACE("client " + std::to_string(i));
    ASSERT_NE(h.clients[i]->replica(), nullptr);
    EXPECT_EQ(h.clients[i]->replica()->GetAllText(), server_text);
    EXPECT_EQ(WriteDocument(*h.clients[i]->replica()), server_bytes);
    EXPECT_EQ(h.clients[i]->applied_version(), h.server.version("shared"));
  }
}

TEST(ServerDifferential, SixtyFourSeedTransportFaultSweep) {
  for (uint64_t seed = 0; seed < 64; ++seed) {
    RunSeededScenario(seed);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST(ServerDifferential, CleanRunMatchesTraceOrderExpectation) {
  // Without faults the server applies edits in trace order, so the final
  // text is exactly the trace's own replay.
  SessionTraceSpec spec;
  spec.seed = 99;
  spec.sessions = 1;
  spec.steps = 64;
  SessionTrace trace = BuildSessionTrace(spec);

  Harness h;
  h.server.HostDocument("shared", MakeDoc(trace.initial_text));
  h.AddClient("solo", "shared");
  size_t next_step = 0;
  int guard = 0;
  while (next_step < trace.steps.size()) {
    ASSERT_LT(++guard, 20000);
    if (h.clients[0]->synced()) {
      const TraceStep& step = trace.steps[next_step++];
      EditOp op;
      op.kind = step.insert ? EditOp::Kind::kInsert : EditOp::Kind::kDelete;
      op.pos = step.pos;
      op.len = step.len;
      op.text = step.text;
      h.clients[0]->SubmitEdit(op);
    }
    h.Step();
  }
  h.Settle();
  EXPECT_EQ(h.server.document("shared")->GetAllText(), ExpectedFinalText(trace));
  EXPECT_EQ(h.clients[0]->replica()->GetAllText(), ExpectedFinalText(trace));
}

// --------------------------------------- Traced propagation (DESIGN.md §8) --

// One edit's causal path as reconstructed from the span ring: every span
// carrying the same flow id, bucketed by role.
struct FlowPath {
  int submits = 0;          // client.edit.submit at the origin
  int applies = 0;          // server.edit.apply
  int replica_applies = 0;  // client.update.apply, one per converged replica
  int retransmits = 0;      // server.frame.retransmit along the way
  std::set<uint32_t> tracks;
};

TEST(ServerDifferential, TracedSweepStitchesEditPropagationFlows) {
  // The acceptance bar for the tracing tentpole: the seeded fault sweep,
  // with tracing on, must yield at least one edit whose flow is traceable
  // origin -> server -> every replica, with at least one retransmit span
  // tagged into the same flow (the faults guarantee drops), spanning the
  // origin's, the server's and each session's track.
  using observability::SpanRecord;
  using observability::Tracer;
  Tracer& tracer = Tracer::Instance();
  tracer.SetCapacity(1 << 17);
  tracer.SetFlowsEnabled(true);
  observability::Histogram& latency =
      observability::MetricsRegistry::Instance().histogram("server.propagation.latency_us");

  constexpr int kSessions = 4;  // Mirrors RunSeededScenario's spec.
  bool found = false;
  for (uint64_t seed = 0; seed < 64 && !found; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    tracer.Clear();
    FlowTracker::Instance().Reset();
    tracer.SetEnabled(true);
    RunSeededScenario(seed);
    tracer.SetEnabled(false);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }

    observability::TraceSnapshot snap = observability::Snapshot();
    std::map<uint64_t, FlowPath> flows;
    for (const SpanRecord& span : snap.spans) {
      if (span.flow == 0) {
        continue;
      }
      FlowPath& path = flows[span.flow];
      path.tracks.insert(span.track);
      if (span.name_view() == "client.edit.submit") {
        ++path.submits;
      } else if (span.name_view() == "server.edit.apply") {
        ++path.applies;
      } else if (span.name_view() == "client.update.apply") {
        ++path.replica_applies;
      } else if (span.name_view() == "server.frame.retransmit") {
        ++path.retransmits;
      }
    }
    for (const auto& [flow_id, path] : flows) {
      if (path.submits >= 1 && path.applies >= 1 && path.replica_applies >= kSessions &&
          path.retransmits >= 1 && path.tracks.size() >= 3) {
        found = true;
        // Origin, server and every replica each live on their own track:
        // the origin session's track, the server's, and the three other
        // sessions' (the origin's submit and replica-apply share one).
        EXPECT_GE(path.tracks.size(), static_cast<size_t>(1 + kSessions));
        // CI (and anyone debugging a sweep failure) gets the full Perfetto
        // document of the first seed that exhibits a complete flow.
        const char* export_path = std::getenv("ATK_SERVER_TRACE_EXPORT");
        if (export_path != nullptr && *export_path != '\0') {
          std::ofstream out(export_path);
          ASSERT_TRUE(out.good()) << "cannot write " << export_path;
          out << observability::TraceExport::ToPerfettoJson(snap);
        }
        break;
      }
    }
  }
  EXPECT_TRUE(found) << "no seed produced a fully traceable retransmitted edit flow";
  // Converged flows closed the end-to-end histogram: origin -> last replica.
  EXPECT_GT(latency.count(), 0u);

  tracer.SetCapacity(Tracer::kDefaultCapacity);
  tracer.Clear();
}

TEST(ServerDifferential, TracedSweepKeepsSpanRingCoherent) {
  // Ring-integrity bar, meant for the TSan run (sanitize label): a seeded
  // fault scenario records server/session spans while a second thread
  // hammers its own ring with flow-tagged probe spans.  Afterwards every
  // retained record must be whole — globally strictly increasing seqs after
  // the Collect merge (no duplicated or reordered slots; gaps are fine, they
  // are the overwritten ring entries) and intact NUL-terminated printable
  // names.
  using observability::ScopedSpan;
  using observability::SpanRecord;
  using observability::Tracer;
  Tracer& tracer = Tracer::Instance();
  tracer.SetCapacity(8192);
  tracer.Clear();
  FlowTracker::Instance().Reset();
  tracer.SetEnabled(true);

  std::atomic<bool> stop{false};
  std::thread prober([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      observability::FlowScope flow(observability::NextFlowId());
      ScopedSpan span("probe.ring.span");
      span.set_arg(1);
      std::this_thread::yield();
    }
  });
  RunSeededScenario(3);
  stop.store(true, std::memory_order_relaxed);
  prober.join();
  tracer.SetEnabled(false);
  if (::testing::Test::HasFatalFailure()) {
    return;
  }

  std::vector<SpanRecord> spans = tracer.Collect();
  ASSERT_FALSE(spans.empty());
  bool first = true;
  uint64_t prev_seq = 0;
  int torn = 0;
  for (const SpanRecord& span : spans) {
    if (!first && span.seq <= prev_seq) {
      ++torn;
    }
    first = false;
    prev_seq = span.seq;
    std::string_view name = span.name_view();
    if (name.empty()) {
      ++torn;
      continue;
    }
    for (char c : name) {
      if (!std::isprint(static_cast<unsigned char>(c))) {
        ++torn;
        break;
      }
    }
  }
  EXPECT_EQ(torn, 0) << "ring holds torn or non-consecutive records";

  tracer.SetCapacity(Tracer::kDefaultCapacity);
  tracer.Clear();
}

}  // namespace
}  // namespace server
}  // namespace atk
