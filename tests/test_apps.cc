// Tests for the applications: EZ, messages (reading + compose), help,
// typescript, console, preview, the filter extension package, and runapp.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/apps/console_app.h"
#include "src/apps/ez_app.h"
#include "src/apps/help_app.h"
#include "src/apps/messages_app.h"
#include "src/apps/preview_app.h"
#include "src/apps/standard_modules.h"
#include "src/apps/typescript_app.h"
#include "src/class_system/loader.h"
#include "src/components/table/table_data.h"
#include "src/workload/workload.h"

namespace atk {
namespace {

class AppTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterStandardModules();
    Loader::Instance().Require("text");
    Loader::Instance().Require("scroll");
    Loader::Instance().Require("frame");
    Loader::Instance().Require("widgets");
    ws_ = WindowSystem::Open("itc");
    ASSERT_NE(ws_, nullptr);
  }
  std::unique_ptr<WindowSystem> ws_;
};

// ---- EZ ---------------------------------------------------------------------

TEST_F(AppTest, EzEditsAndRendersText) {
  EzApp ez;
  std::unique_ptr<InteractionManager> im = ez.Start(*ws_, {"ez"});
  ASSERT_NE(im, nullptr);
  im->RunOnce();
  for (char ch : std::string("Dear David,")) {
    im->window()->Inject(InputEvent::KeyPress(ch));
  }
  im->RunOnce();
  EXPECT_EQ(ez.document()->GetAllText(), "Dear David,");
  EXPECT_GT(im->window()->Display().DiffCount(PixelImage(560, 400, kWhite)), 100);
}

TEST_F(AppTest, EzInsertMenuEmbedsComponentsViaDynamicLoading) {
  Loader::Instance().UnloadAllForTest();
  EzApp ez;
  std::unique_ptr<InteractionManager> im = ez.Start(*ws_, {"ez"});
  im->RunOnce();
  EXPECT_FALSE(Loader::Instance().IsLoaded("table"));
  // The Insert menu exists without the table module being loaded...
  MenuList menus = im->ComposeMenus();
  ASSERT_NE(menus.Find("Insert~Table"), nullptr);
  // ...and invoking it loads the module on demand (§1's extension story).
  EXPECT_TRUE(im->InvokeMenu("Insert~Table"));
  EXPECT_TRUE(Loader::Instance().IsLoaded("table"));
  ASSERT_EQ(ez.document()->embedded_count(), 1u);
  EXPECT_EQ(ez.document()->embedded_objects()[0].data->DataTypeName(), "table");
  im->RunOnce();
  // A spread view child now lives inside the text view.
  ASSERT_FALSE(ez.text_view()->children().empty());
  EXPECT_TRUE(ez.text_view()->children()[0]->IsA("tableview"));
}

TEST_F(AppTest, EzSaveAndReopenFile) {
  std::string path = "/tmp/atk_ez_test_doc.d";
  {
    EzApp ez;
    std::unique_ptr<InteractionManager> im = ez.Start(*ws_, {"ez"});
    ez.text_view()->InsertText("compound document\n");
    ez.InsertComponent("table");
    ASSERT_TRUE(ez.SaveFile(path));
  }
  {
    EzApp ez;
    std::unique_ptr<InteractionManager> im = ez.Start(*ws_, {"ez", path});
    EXPECT_NE(ez.document()->GetAllText().find("compound document"), std::string::npos);
    EXPECT_EQ(ez.document()->embedded_count(), 1u);
    im->RunOnce();
  }
  std::remove(path.c_str());
}

TEST_F(AppTest, EzOpensPlainTextGracefully) {
  std::string path = "/tmp/atk_ez_plain.txt";
  {
    std::ofstream out(path);
    out << "just plain text\nno markers\n";
  }
  EzApp ez;
  std::unique_ptr<InteractionManager> im = ez.Start(*ws_, {"ez", path});
  EXPECT_EQ(ez.document()->GetAllText(), "just plain text\nno markers\n");
  std::remove(path.c_str());
}

TEST_F(AppTest, EzWrapsBareComponentDocuments) {
  // Opening a file whose root is a table: EZ wraps it in text.
  Loader::Instance().Require("table");
  TableData table;
  table.Resize(2, 2);
  table.SetNumber(0, 0, 7);
  EzApp ez;
  std::unique_ptr<InteractionManager> im = ez.Start(*ws_, {"ez"});
  ASSERT_TRUE(ez.LoadDocumentString(WriteDocument(table)));
  ASSERT_EQ(ez.document()->embedded_count(), 1u);
  TableData* embedded = ObjectCast<TableData>(ez.document()->embedded_objects()[0].data.get());
  ASSERT_NE(embedded, nullptr);
  EXPECT_DOUBLE_EQ(embedded->Value(0, 0), 7);
}

// ---- Filter package (dynamic extension) ------------------------------------------

TEST_F(AppTest, FilterPackageLoadsOnFirstInvocation) {
  Loader::Instance().UnloadAllForTest();
  EzApp ez;
  std::unique_ptr<InteractionManager> im = ez.Start(*ws_, {"ez"});
  ez.text_view()->InsertText("hello filters");
  ez.text_view()->SetDot(0, 5);
  EXPECT_FALSE(Loader::Instance().IsLoaded("proc:filter"));
  // Invoking the menu command loads the dormant module, then runs it.
  EXPECT_TRUE(im->InvokeMenu("Region~Upcase"));
  EXPECT_TRUE(Loader::Instance().IsLoaded("proc:filter"));
  EXPECT_EQ(ez.document()->GetAllText(), "HELLO filters");
}

TEST_F(AppTest, FilterSortLines) {
  Loader::Instance().Require("proc:filter");
  EzApp ez;
  std::unique_ptr<InteractionManager> im = ez.Start(*ws_, {"ez"});
  ez.text_view()->InsertText("pear\napple\nmango\n");
  ez.text_view()->SetDot(0, ez.document()->size());
  EXPECT_TRUE(im->InvokeMenu("Region~Sort Lines"));
  EXPECT_EQ(ez.document()->GetAllText(), "apple\nmango\npear\n");
}

// ---- Messages ----------------------------------------------------------------------

TEST_F(AppTest, MessagesReadingWindowFlow) {
  MessagesApp app;
  WorkloadRng rng(7);
  GenerateMailbox(rng, app.store(), 3, 4, 0.5);
  std::unique_ptr<InteractionManager> im = app.Start(*ws_, {"messages"});
  im->RunOnce();
  EXPECT_GE(app.folder_list()->items().size(), 3u);
  // Select a folder: captions appear.
  app.folder_list()->Select(2);
  im->RunOnce();
  EXPECT_EQ(app.caption_list()->items().size(), 4u);
  // Select a message: body is parsed and displayed; new flag clears.
  app.caption_list()->Select(0);
  im->RunOnce();
  EXPECT_GT(app.body_view()->text()->size(), 0);
  MailFolder* folder = app.store().FindFolder(app.current_folder());
  ASSERT_NE(folder, nullptr);
  EXPECT_FALSE(folder->messages[0].is_new);
}

TEST_F(AppTest, MessageWithEmbeddedDrawingDisplaysIt) {
  // Snapshot 3: "the message being displayed contains a drawing within the
  // text of the message."
  Loader::Instance().Require("drawing");
  MessagesApp app;
  TextData body;
  body.SetText("see the attached figure:\n");
  auto drawing = std::make_unique<DrawData>();
  drawing->AddRect(Rect{2, 2, 40, 20});
  body.InsertObject(body.size(), std::move(drawing));
  MailMessage message;
  message.from = "nsb@andrew";
  message.subject = "The big picture";
  message.body = WriteDocument(body);
  ASSERT_TRUE(app.store().Deliver("mail", std::move(message)));
  std::unique_ptr<InteractionManager> im = app.Start(*ws_, {"messages"});
  im->RunOnce();
  app.folder_list()->Select(0);  // "mail" is first.
  im->RunOnce();
  app.caption_list()->Select(0);
  im->RunOnce();
  ASSERT_NE(app.body_view()->text(), nullptr);
  EXPECT_EQ(app.body_view()->text()->embedded_count(), 1u);
  ASSERT_FALSE(app.body_view()->children().empty());
  EXPECT_TRUE(app.body_view()->children()[0]->IsA("drawview"));
}

TEST_F(AppTest, ComposeAndSendWithRaster) {
  // Snapshot 4: a raster image in a composed message.
  Loader::Instance().Require("raster");
  MessagesApp app;
  std::unique_ptr<InteractionManager> reader_im = app.Start(*ws_, {"messages"});
  auto composer = app.NewComposer();
  std::unique_ptr<InteractionManager> compose_im = composer->OpenWindow(*ws_);
  compose_im->RunOnce();
  composer->to().SetText("palay@andrew");
  composer->subject().SetText("Big Cat");
  composer->body().SetText("Knowing your fondness for big cats...\n");
  WorkloadRng rng(3);
  composer->body().InsertObject(composer->body().size(), GenerateRaster(rng, 16, 12));
  ASSERT_TRUE(composer->Send("mail"));
  MailFolder* folder = app.store().FindFolder("mail");
  ASSERT_NE(folder, nullptr);
  ASSERT_EQ(folder->messages.size(), 1u);
  const MailMessage& delivered = folder->messages[0];
  EXPECT_EQ(delivered.subject, "Big Cat");
  // The wire form is mailable and contains the raster block (§5).
  EXPECT_TRUE(MailStore::IsMailable(delivered.body));
  EXPECT_NE(delivered.body.find("\\begindata{raster,"), std::string::npos);
  // Reading it back reproduces the raster.
  ReadContext ctx;
  std::unique_ptr<DataObject> parsed = ReadDocument(delivered.body, &ctx);
  TextData* parsed_text = ObjectCast<TextData>(parsed.get());
  ASSERT_NE(parsed_text, nullptr);
  ASSERT_EQ(parsed_text->embedded_count(), 1u);
  RasterData* raster = ObjectCast<RasterData>(parsed_text->embedded_objects()[0].data.get());
  ASSERT_NE(raster, nullptr);
  EXPECT_GT(raster->Population(), 0);
}

TEST_F(AppTest, UnmailableBodyIsRejected) {
  MessagesApp app;
  MailMessage message;
  message.body = std::string("raw\x80高bits");
  EXPECT_FALSE(app.store().Deliver("mail", std::move(message)));
}

// ---- Help --------------------------------------------------------------------------

TEST_F(AppTest, HelpTopicsListAndDisplay) {
  HelpApp app;
  std::unique_ptr<InteractionManager> im = app.Start(*ws_, {"help"});
  im->RunOnce();
  EXPECT_GE(app.TopicNames().size(), 6u);
  EXPECT_TRUE(app.ShowTopic("messages"));
  EXPECT_EQ(app.current_topic(), "messages");
  EXPECT_NE(app.doc_view()->text()->GetAllText().find("folders"), std::string::npos);
  EXPECT_FALSE(app.ShowTopic("no-such-topic"));
  EXPECT_EQ(app.current_topic(), "messages");  // Unchanged.
}

TEST_F(AppTest, HelpSearchFindsByNameAndBody) {
  HelpApp app;
  std::vector<std::string> hits = app.Search("SPREADSHEET");
  EXPECT_TRUE(hits.empty());
  hits = app.Search("scroll bars");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], "toolkit");
  hits = app.Search("ez");
  EXPECT_GE(hits.size(), 1u);
}

TEST_F(AppTest, HelpIndexClickShowsTopic) {
  HelpApp app;
  std::unique_ptr<InteractionManager> im = app.Start(*ws_, {"help"});
  im->RunOnce();
  int row = 0;
  for (const std::string& name : app.index_list()->items()) {
    if (name == "printing") {
      break;
    }
    ++row;
  }
  app.index_list()->Select(row);
  im->RunOnce();
  EXPECT_EQ(app.current_topic(), "printing");
}

TEST_F(AppTest, HelpDocumentsMayEmbedComponents) {
  Loader::Instance().Require("drawing");
  HelpApp app;
  TextData doc;
  doc.SetText("The view tree:\n");
  auto drawing = std::make_unique<DrawData>();
  drawing->AddRect(Rect{0, 0, 60, 30});
  drawing->AddLine(Point{30, 30}, Point{30, 50});
  doc.InsertObject(doc.size(), std::move(drawing));
  app.AddTopic("view tree", WriteDocument(doc));
  std::unique_ptr<InteractionManager> im = app.Start(*ws_, {"help", "view tree"});
  im->RunOnce();
  EXPECT_EQ(app.doc_view()->text()->embedded_count(), 1u);
}

// ---- Typescript --------------------------------------------------------------------------

TEST_F(AppTest, TypescriptExecutesCommands) {
  TypescriptApp app;
  std::unique_ptr<InteractionManager> im = app.Start(*ws_, {"typescript"});
  im->RunOnce();
  std::string out = app.view()->RunCommand("echo hello world");
  EXPECT_EQ(out, "hello world\n");
  out = app.view()->RunCommand("ls");
  EXPECT_NE(out.find("readme"), std::string::npos);
  out = app.view()->RunCommand("cat readme");
  EXPECT_NE(out.find("Welcome"), std::string::npos);
  out = app.view()->RunCommand("frobnicate");
  EXPECT_EQ(out, "frobnicate: Command not found.\n");
  // The transcript accumulated everything.
  std::string transcript = app.transcript()->GetAllText();
  EXPECT_NE(transcript.find("% echo hello world"), std::string::npos);
  EXPECT_NE(transcript.find("hello world"), std::string::npos);
}

TEST_F(AppTest, TypescriptKeyboardFlow) {
  TypescriptApp app;
  std::unique_ptr<InteractionManager> im = app.Start(*ws_, {"typescript"});
  im->RunOnce();
  for (char ch : std::string("date\r")) {
    im->window()->Inject(InputEvent::KeyPress(ch));
  }
  im->RunOnce();
  EXPECT_NE(app.transcript()->GetAllText().find("1988"), std::string::npos);
  EXPECT_EQ(app.shell().history().back(), "date");
  // Backspace cannot erase the prompt.
  im->window()->Inject(InputEvent::KeyPress('\177'));
  im->window()->Inject(InputEvent::KeyPress('\177'));
  im->RunOnce();
  std::string transcript = app.transcript()->GetAllText();
  EXPECT_EQ(transcript.substr(transcript.size() - 2), "% ");
}

// ---- Console ----------------------------------------------------------------------------------

TEST_F(AppTest, ConsoleRendersStatsAndUpdates) {
  ConsoleApp app;
  std::unique_ptr<InteractionManager> im = app.Start(*ws_, {"console"});
  im->RunOnce();
  uint64_t before = im->window()->Display().Hash();
  ConsoleSample sample;
  sample.hour = 14;
  sample.minute = 45;
  sample.cpu_load = 0.9;
  sample.filesystems = {{"/", 0.3}};
  app.data().Update(sample);
  im->RunOnce();
  EXPECT_NE(im->window()->Display().Hash(), before);
  EXPECT_EQ(app.data().load_history().back(), 0.9);
}

TEST_F(AppTest, ConsoleLoadHistoryIsBounded) {
  ConsoleApp app;
  for (int i = 0; i < 100; ++i) {
    ConsoleSample sample;
    sample.cpu_load = i / 100.0;
    app.data().Update(sample);
  }
  EXPECT_EQ(app.data().load_history().size(), ConsoleData::kLoadHistory);
  EXPECT_DOUBLE_EQ(app.data().load_history().back(), 0.99);
}

// ---- Preview -------------------------------------------------------------------------------------

TEST_F(AppTest, TroffTranslationStylesText) {
  std::string troff =
      ".ce 1\nThe Andrew Toolkit\n.sp 1\n.B\nbold paragraph here\n.R\nplain again\n"
      ".I italic line\nrest\n";
  std::unique_ptr<TextData> text = TroffToText(troff);
  std::string content = text->GetAllText();
  EXPECT_NE(content.find("The Andrew Toolkit"), std::string::npos);
  // Centered heading.
  int64_t title_pos = static_cast<int64_t>(content.find("The Andrew Toolkit"));
  EXPECT_EQ(text->StyleNameAt(title_pos), "center");
  int64_t bold_pos = static_cast<int64_t>(content.find("bold paragraph"));
  EXPECT_EQ(text->StyleNameAt(bold_pos), "bold");
  int64_t plain_pos = static_cast<int64_t>(content.find("plain again"));
  EXPECT_EQ(text->StyleNameAt(plain_pos), "default");
  int64_t italic_pos = static_cast<int64_t>(content.find("italic line"));
  EXPECT_EQ(text->StyleNameAt(italic_pos), "italic");
}

TEST_F(AppTest, PreviewShowsPagedDocument) {
  PreviewApp app;
  app.LoadTroff(".ce 1\nTitle\n.sp 2\nbody text follows here\n");
  std::unique_ptr<InteractionManager> im = app.Start(*ws_, {"preview"});
  im->RunOnce();
  // The paged view's desk chrome is visible.
  EXPECT_EQ(im->window()->Display().GetPixel(ScrollBarView::kBarWidth + 3, 30), kLightGray);
  EXPECT_GE(app.page_view()->PageCount(), 1);
}

// ---- runapp over the real application modules ------------------------------------------------------

TEST_F(AppTest, RunAppStartsEveryStandardApplication) {
  for (const char* name : {"ez", "messages", "help", "typescript", "console", "preview"}) {
    std::unique_ptr<InteractionManager> im = RunApp(name, *ws_);
    ASSERT_NE(im, nullptr) << name;
    im->RunOnce();
    EXPECT_TRUE(Loader::Instance().IsLoaded(std::string("app-") + name));
    // Every app rendered something.
    Size size = im->window()->size();
    EXPECT_GT(im->window()->Display().DiffCount(PixelImage(size.width, size.height, kWhite)),
              10)
        << name;
  }
}

}  // namespace
}  // namespace atk
