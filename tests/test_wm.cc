// Tests for the window-system layer: the six-class porting surface, backend
// selection through the loader / environment variable, event queues, and the
// ITC-vs-X11 behavioural differences the paper calls out (request buffering,
// backing store and exposure events).

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/base/interaction_manager.h"
#include "src/class_system/loader.h"
#include "src/wm/printer.h"
#include "src/wm/window_system.h"
#include "src/wm/wm_itc.h"
#include "src/wm/wm_x11sim.h"

namespace atk {
namespace {

class WmTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterWindowSystemModules(); }
};

TEST_F(WmTest, OpenByNameLoadsBackendModule) {
  Loader& loader = Loader::Instance();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  ASSERT_NE(ws, nullptr);
  EXPECT_EQ(ws->SystemName(), "itc");
  EXPECT_TRUE(loader.IsLoaded("wm-itc"));
}

TEST_F(WmTest, OpenUnknownBackendFails) {
  EXPECT_EQ(WindowSystem::Open("news"), nullptr);
}

TEST_F(WmTest, EnvironmentVariableSelectsBackend) {
  ::setenv("ATK_WINDOW_SYSTEM", "x11", 1);
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open();
  ::unsetenv("ATK_WINDOW_SYSTEM");
  ASSERT_NE(ws, nullptr);
  EXPECT_EQ(ws->SystemName(), "x11");
}

TEST_F(WmTest, DefaultBackendIsItc) {
  ::unsetenv("ATK_WINDOW_SYSTEM");
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open();
  ASSERT_NE(ws, nullptr);
  EXPECT_EQ(ws->SystemName(), "itc");
}

TEST_F(WmTest, PortingSurfaceIsAboutSeventyRoutines) {
  size_t n = WindowSystem::PortingRoutines().size();
  EXPECT_GE(n, 60u);
  EXPECT_LE(n, 80u);
}

TEST_F(WmTest, BothBackendsCreateUsableWindows) {
  for (const char* name : {"itc", "x11"}) {
    std::unique_ptr<WindowSystem> ws = WindowSystem::Open(name);
    ASSERT_NE(ws, nullptr) << name;
    std::unique_ptr<WmWindow> window = ws->CreateWindow(100, 80, "test");
    ASSERT_NE(window, nullptr);
    EXPECT_EQ(window->size(), (Size{100, 80}));
    EXPECT_EQ(window->title(), "test");
    Graphic* g = window->GetGraphic();
    ASSERT_NE(g, nullptr);
    g->FillRect(Rect{10, 10, 10, 10});
    window->Flush();
    EXPECT_EQ(window->Display().GetPixel(15, 15), kBlack) << name;
  }
}

TEST_F(WmTest, EventQueueIsFifoAndStamped) {
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  std::unique_ptr<WmWindow> window = ws->CreateWindow(100, 80, "");
  window->Inject(InputEvent::KeyPress('a'));
  window->Inject(InputEvent::MouseAt(EventType::kMouseDown, Point{3, 4}));
  ASSERT_TRUE(window->HasEvent());
  InputEvent first = window->NextEvent();
  EXPECT_EQ(first.type, EventType::kKeyDown);
  EXPECT_EQ(first.key, 'a');
  InputEvent second = window->NextEvent();
  EXPECT_EQ(second.type, EventType::kMouseDown);
  EXPECT_GT(second.time, first.time);
  EXPECT_FALSE(window->HasEvent());
}

TEST_F(WmTest, ItcDrawsThroughImmediately) {
  ItcWindow window(50, 50);
  window.GetGraphic()->FillRect(Rect{0, 0, 5, 5});
  // No flush needed: immediate-mode system.
  EXPECT_EQ(window.Display().GetPixel(2, 2), kBlack);
}

TEST_F(WmTest, X11BuffersUntilFlush) {
  X11Window window(50, 50);
  window.GetGraphic()->FillRect(Rect{0, 0, 5, 5});
  EXPECT_EQ(window.Display().GetPixel(2, 2), kWhite);  // Still buffered.
  EXPECT_EQ(window.PendingRequests(), 1u);
  window.Flush();
  EXPECT_EQ(window.Display().GetPixel(2, 2), kBlack);
  EXPECT_EQ(window.PendingRequests(), 0u);
  EXPECT_EQ(window.FlushCount(), 1u);
}

TEST_F(WmTest, ItcPreservesContentsUnderOverlap) {
  ItcWindow window(50, 50);
  window.GetGraphic()->FillRect(Rect{0, 0, 50, 50});
  window.Obscure(Rect{10, 10, 20, 20});
  EXPECT_EQ(window.Display().GetPixel(15, 15), kGray);  // Covered.
  window.Unobscure();
  // Contents restored by the window manager; no expose event delivered.
  EXPECT_EQ(window.Display().GetPixel(15, 15), kBlack);
  EXPECT_FALSE(window.HasEvent());
}

TEST_F(WmTest, X11LosesContentsAndDeliversExpose) {
  X11Window window(50, 50);
  while (window.HasEvent()) {
    window.NextEvent();  // Drain the map-time exposure.
  }
  window.GetGraphic()->FillRect(Rect{0, 0, 50, 50});
  window.Flush();
  window.Obscure(Rect{10, 10, 20, 20});
  EXPECT_EQ(window.Display().GetPixel(15, 15), kGray);
  window.Unobscure();
  // No backing store: pixels gone, client must repaint.
  EXPECT_EQ(window.Display().GetPixel(15, 15), kWhite);
  ASSERT_TRUE(window.HasEvent());
  InputEvent e = window.NextEvent();
  EXPECT_EQ(e.type, EventType::kExpose);
  EXPECT_EQ(e.rect, (Rect{10, 10, 20, 20}));
}

TEST_F(WmTest, X11DeliversInitialExposureOnMap) {
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("x11");
  std::unique_ptr<WmWindow> window = ws->CreateWindow(64, 64, "");
  ASSERT_TRUE(window->HasEvent());
  EXPECT_EQ(window->NextEvent().type, EventType::kExpose);
}

TEST_F(WmTest, ResizeInjectsResizeEvent) {
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  std::unique_ptr<WmWindow> window = ws->CreateWindow(64, 64, "");
  window->Resize(128, 96);
  EXPECT_EQ(window->size(), (Size{128, 96}));
  ASSERT_TRUE(window->HasEvent());
  InputEvent e = window->NextEvent();
  EXPECT_EQ(e.type, EventType::kResize);
  EXPECT_EQ(e.size, (Size{128, 96}));
}

TEST_F(WmTest, IdenticalSceneRendersIdenticallyOnBothBackends) {
  // §8: "we are currently able to run applications on two different window
  // systems without any recompilation" — the same op stream must produce the
  // same pixels.
  auto render = [](WmWindow& window) {
    Graphic* g = window.GetGraphic();
    g->Clear();
    g->DrawRect(Rect{5, 5, 50, 40});
    g->DrawString(Point{10, 10}, "Andrew");
    g->DrawLine(Point{0, 0}, Point{63, 63});
    g->FillEllipse(Rect{30, 30, 20, 12});
    window.Flush();
    return window.Display().Hash();
  };
  std::unique_ptr<WindowSystem> itc = WindowSystem::Open("itc");
  std::unique_ptr<WindowSystem> x11 = WindowSystem::Open("x11");
  std::unique_ptr<WmWindow> wi = itc->CreateWindow(64, 64, "");
  std::unique_ptr<WmWindow> wx = x11->CreateWindow(64, 64, "");
  EXPECT_EQ(render(*wi), render(*wx));
}

TEST_F(WmTest, OffscreenWindowDrawsAndBlits) {
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  std::unique_ptr<OffscreenWindow> off = ws->CreateOffscreen(16, 16);
  off->GetGraphic()->FillRect(Rect{0, 0, 8, 8});
  std::unique_ptr<WmWindow> window = ws->CreateWindow(64, 64, "");
  window->GetGraphic()->DrawImage(off->image(), off->image().bounds(), Point{20, 20});
  window->Flush();
  EXPECT_EQ(window->Display().GetPixel(21, 21), kBlack);
  EXPECT_EQ(window->Display().GetPixel(29, 29), kWhite);
}

TEST_F(WmTest, CursorAndFontDescFactories) {
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  std::unique_ptr<WmCursor> cursor = ws->CreateCursor(CursorShape::kIBeam);
  EXPECT_EQ(cursor->shape(), CursorShape::kIBeam);
  std::unique_ptr<WmFontDesc> font = ws->CreateFontDesc(FontSpec{"andy", 12, kBold});
  EXPECT_EQ(font->font().spec().size, 12);
  std::unique_ptr<WmWindow> window = ws->CreateWindow(32, 32, "");
  window->SetCursor(*cursor);
  EXPECT_EQ(window->cursor_shape(), CursorShape::kIBeam);
}

TEST_F(WmTest, PrintJobPagesAreIndependentDrawables) {
  PrintJob job(100, 60, 10);
  Graphic* page1 = job.NewPage();
  page1->FillRect(Rect{0, 0, 5, 5});
  Graphic* page2 = job.NewPage();
  page2->DrawString(Point{0, 0}, "p2");
  EXPECT_EQ(job.page_count(), 2);
  // Page margins: the drawable's (0,0) is inset by the margin.
  EXPECT_EQ(job.page(0).GetPixel(10, 10), kBlack);
  EXPECT_EQ(job.page(0).GetPixel(5, 5), kWhite);
  // Page 2 has text ink but no fill at the corner.
  EXPECT_EQ(job.page(1).GetPixel(10, 10), kWhite);
}

TEST_F(WmTest, ExposeReplayMergesWithPendingDamage) {
  // An expose replay (e.g. after an X11 obscure or a reconnect) can arrive
  // while application damage is already pending.  Both must merge into the
  // one coalesced region and be satisfied by a single paint per view — no
  // double-painting, no lost rect.
  class CountingView : public View {
   public:
    int updates = 0;
    void FullUpdate() override {
      ++updates;
      graphic()->Clear();
    }
  };

  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 100, 80, "merge");
  CountingView view;
  im->SetChild(&view);
  im->RunOnce();
  view.updates = 0;

  const Rect posted_local{5, 5, 10, 10};
  Rect device = view.DeviceBounds();
  const Rect posted_device = posted_local.Translated(device.x, device.y);
  const Rect exposed{30, 30, 20, 20};

  view.PostUpdate(posted_local);
  ASSERT_TRUE(im->HasPendingDamage());
  im->window()->Inject(InputEvent::Exposure(exposed));
  while (im->window()->HasEvent()) {
    im->ProcessEvent(im->window()->NextEvent());
  }

  // Merged, disjoint, and exactly the union — nothing lost, nothing doubled.
  const Region& damage = im->pending_damage();
  EXPECT_TRUE(damage.Covers(posted_device));
  EXPECT_TRUE(damage.Covers(exposed));
  int64_t overlap = posted_device.Intersect(exposed).Area();
  EXPECT_EQ(damage.Area(), posted_device.Area() + exposed.Area() - overlap);

  uint64_t cycles_before = im->stats().update_cycles;
  im->RunUpdateCycle();
  EXPECT_EQ(im->stats().update_cycles, cycles_before + 1);
  EXPECT_EQ(view.updates, 1);  // One cycle, one paint.
  EXPECT_FALSE(im->HasPendingDamage());

  // A further cycle with no damage paints nothing.
  im->RunUpdateCycle();
  EXPECT_EQ(view.updates, 1);
}

TEST_F(WmTest, RequestCountsAccumulatePerBackendModel) {
  std::unique_ptr<WindowSystem> itc = WindowSystem::Open("itc");
  std::unique_ptr<WmWindow> wi = itc->CreateWindow(32, 32, "");
  wi->GetGraphic()->FillRect(Rect{0, 0, 4, 4});
  wi->GetGraphic()->DrawLine(Point{0, 0}, Point{5, 5});
  EXPECT_EQ(wi->RequestCount(), 2u);

  std::unique_ptr<WindowSystem> x11 = WindowSystem::Open("x11");
  std::unique_ptr<WmWindow> wx = x11->CreateWindow(32, 32, "");
  wx->GetGraphic()->FillRect(Rect{0, 0, 4, 4});
  wx->GetGraphic()->DrawLine(Point{0, 0}, Point{5, 5});
  EXPECT_EQ(wx->RequestCount(), 2u);
  X11Window* xw = ObjectCast<X11Window>(wx.get());
  ASSERT_NE(xw, nullptr);
  EXPECT_EQ(xw->PendingRequests(), 2u);
}

}  // namespace
}  // namespace atk
