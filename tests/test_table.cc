// Tests for the table component: the formula engine, TableData (editing,
// recalculation, cycles, external representation, embedded objects),
// TableView interaction, and the chart observer chain of §2.

#include <gtest/gtest.h>

#include "src/apps/standard_modules.h"
#include "src/base/interaction_manager.h"
#include "src/class_system/loader.h"
#include "src/components/table/chart.h"
#include "src/components/table/formula.h"
#include "src/components/table/table_view.h"
#include "src/components/text/text_view.h"
#include "src/wm/window_system.h"
#include "src/workload/workload.h"

namespace atk {
namespace {

// ---- CellRef / parser -----------------------------------------------------

TEST(CellRef, ParseA1Notation) {
  CellRef ref;
  ASSERT_TRUE(CellRef::Parse("A1", &ref));
  EXPECT_EQ(ref.row, 0);
  EXPECT_EQ(ref.col, 0);
  ASSERT_TRUE(CellRef::Parse("B3", &ref));
  EXPECT_EQ(ref.row, 2);
  EXPECT_EQ(ref.col, 1);
  ASSERT_TRUE(CellRef::Parse("Z10", &ref));
  EXPECT_EQ(ref.col, 25);
  ASSERT_TRUE(CellRef::Parse("AA1", &ref));
  EXPECT_EQ(ref.col, 26);
  EXPECT_FALSE(CellRef::Parse("1A", &ref));
  EXPECT_FALSE(CellRef::Parse("A0", &ref));
  EXPECT_FALSE(CellRef::Parse("", &ref));
  EXPECT_FALSE(CellRef::Parse("A1B", &ref));
}

TEST(CellRef, RoundTripToA1) {
  for (int row : {0, 1, 9, 99}) {
    for (int col : {0, 1, 25, 26, 27, 51, 52}) {
      CellRef ref{row, col};
      CellRef back;
      ASSERT_TRUE(CellRef::Parse(ref.ToA1(), &back)) << ref.ToA1();
      EXPECT_EQ(back, ref);
    }
  }
}

double Eval(const std::string& src, const FormulaEnv& env = {}) {
  ParsedFormula parsed = ParseFormula(src);
  EXPECT_TRUE(parsed.ok) << src << ": " << parsed.error;
  if (!parsed.ok) {
    return 0;
  }
  FormulaResult result = parsed.expr->Evaluate(env);
  EXPECT_FALSE(result.error) << src << ": " << result.error_message;
  return result.value;
}

TEST(Formula, ArithmeticAndPrecedence) {
  EXPECT_DOUBLE_EQ(Eval("1+2*3"), 7);
  EXPECT_DOUBLE_EQ(Eval("(1+2)*3"), 9);
  EXPECT_DOUBLE_EQ(Eval("10-4-3"), 3);  // Left associative.
  EXPECT_DOUBLE_EQ(Eval("12/4/3"), 1);
  EXPECT_DOUBLE_EQ(Eval("-3+5"), 2);
  EXPECT_DOUBLE_EQ(Eval("--4"), 4);
  EXPECT_DOUBLE_EQ(Eval("2*-3"), -6);
  EXPECT_DOUBLE_EQ(Eval("1.5*2"), 3);
}

TEST(Formula, ComparisonsAndIf) {
  EXPECT_DOUBLE_EQ(Eval("3<5"), 1);
  EXPECT_DOUBLE_EQ(Eval("5<=4"), 0);
  EXPECT_DOUBLE_EQ(Eval("4>=4"), 1);
  EXPECT_DOUBLE_EQ(Eval("3<>3"), 0);
  EXPECT_DOUBLE_EQ(Eval("IF(2>1,10,20)"), 10);
  EXPECT_DOUBLE_EQ(Eval("IF(2<1,10,20)"), 20);
  EXPECT_DOUBLE_EQ(Eval("IF(1,2+3,999)"), 5);
}

TEST(Formula, FunctionsOverRanges) {
  FormulaEnv env;
  env.value = [](CellRef ref) { return static_cast<double>(ref.row * 10 + ref.col); };
  env.has_error = [](CellRef) { return false; };
  // A1:A3 = 0, 10, 20.
  EXPECT_DOUBLE_EQ(Eval("SUM(A1:A3)", env), 30);
  EXPECT_DOUBLE_EQ(Eval("AVG(A1:A3)", env), 10);
  EXPECT_DOUBLE_EQ(Eval("MIN(A1:A3)", env), 0);
  EXPECT_DOUBLE_EQ(Eval("MAX(A1:B3)", env), 21);
  EXPECT_DOUBLE_EQ(Eval("COUNT(A1:B3)", env), 6);
  EXPECT_DOUBLE_EQ(Eval("SUM(A1,B2,5)", env), 16);
  EXPECT_DOUBLE_EQ(Eval("ABS(0-7)"), 7);
  EXPECT_DOUBLE_EQ(Eval("SQRT(16)"), 4);
}

TEST(Formula, ParseErrors) {
  EXPECT_FALSE(ParseFormula("1+").ok);
  EXPECT_FALSE(ParseFormula("(1+2").ok);
  EXPECT_FALSE(ParseFormula("FOO(1)").ok);
  EXPECT_FALSE(ParseFormula("1 2").ok);
  EXPECT_FALSE(ParseFormula("").ok);
  EXPECT_FALSE(ParseFormula("A1:").ok);
}

TEST(Formula, EvalErrors) {
  ParsedFormula parsed = ParseFormula("1/0");
  ASSERT_TRUE(parsed.ok);
  FormulaResult result = parsed.expr->Evaluate({});
  EXPECT_TRUE(result.error);
  parsed = ParseFormula("SQRT(0-1)");
  ASSERT_TRUE(parsed.ok);
  EXPECT_TRUE(parsed.expr->Evaluate({}).error);
}

TEST(Formula, CollectRefsExpandsRanges) {
  ParsedFormula parsed = ParseFormula("SUM(A1:B2)+C5");
  ASSERT_TRUE(parsed.ok);
  std::vector<CellRef> refs;
  parsed.expr->CollectRefs(refs);
  EXPECT_EQ(refs.size(), 5u);
}

// ---- TableData ----------------------------------------------------------------

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterStandardModules();
    Loader::Instance().Require("table");
  }
  TableData table_;
};

TEST_F(TableTest, CellKindsAndDisplay) {
  table_.Resize(3, 3);
  table_.SetText(0, 0, "label");
  table_.SetNumber(0, 1, 42);
  table_.SetFormula(0, 2, "B1*2");
  EXPECT_EQ(table_.DisplayText(0, 0), "label");
  EXPECT_EQ(table_.DisplayText(0, 1), "42");
  EXPECT_EQ(table_.DisplayText(0, 2), "84");
  EXPECT_DOUBLE_EQ(table_.Value(0, 2), 84);
  EXPECT_EQ(table_.DisplayText(1, 1), "");
  table_.ClearCell(0, 1);
  EXPECT_EQ(table_.at(0, 1).kind, TableData::CellKind::kEmpty);
  // Formula now reads 0 from the empty cell.
  EXPECT_DOUBLE_EQ(table_.Value(0, 2), 0);
}

TEST_F(TableTest, SetFromInputClassifies) {
  table_.Resize(2, 2);
  table_.SetFromInput(0, 0, "hello");
  table_.SetFromInput(0, 1, "3.25");
  table_.SetFromInput(1, 0, "=A1+1");
  table_.SetFromInput(1, 1, "");
  EXPECT_EQ(table_.at(0, 0).kind, TableData::CellKind::kText);
  EXPECT_EQ(table_.at(0, 1).kind, TableData::CellKind::kNumber);
  EXPECT_EQ(table_.at(1, 0).kind, TableData::CellKind::kFormula);
  EXPECT_EQ(table_.at(1, 1).kind, TableData::CellKind::kEmpty);
  EXPECT_DOUBLE_EQ(table_.Value(0, 1), 3.25);
}

TEST_F(TableTest, DependencyChainsRecalculateInOrder) {
  table_.Resize(1, 4);
  table_.SetNumber(0, 0, 5);
  table_.SetFormula(0, 1, "A1*2");
  table_.SetFormula(0, 2, "B1*2");
  table_.SetFormula(0, 3, "C1*2");
  EXPECT_DOUBLE_EQ(table_.Value(0, 3), 40);
  table_.SetNumber(0, 0, 1);
  EXPECT_DOUBLE_EQ(table_.Value(0, 3), 8);
}

TEST_F(TableTest, CircularReferencesBecomeErrors) {
  table_.Resize(1, 3);
  table_.SetFormula(0, 0, "B1+1");
  table_.SetFormula(0, 1, "A1+1");
  table_.SetNumber(0, 2, 7);
  EXPECT_TRUE(table_.at(0, 0).error);
  EXPECT_TRUE(table_.at(0, 1).error);
  EXPECT_EQ(table_.DisplayText(0, 0), "#ERR");
  EXPECT_FALSE(table_.at(0, 2).error);
  // Self-reference too.
  table_.SetFormula(0, 2, "C1");
  EXPECT_TRUE(table_.at(0, 2).error);
  // Breaking the cycle heals on the next recalculation.
  table_.SetNumber(0, 1, 3);
  EXPECT_FALSE(table_.at(0, 0).error);
  EXPECT_DOUBLE_EQ(table_.Value(0, 0), 4);
}

TEST_F(TableTest, FormulaReferencingErrorCellIsError) {
  table_.Resize(1, 3);
  table_.SetFormula(0, 0, "1/0");
  table_.SetFormula(0, 1, "A1+1");
  EXPECT_TRUE(table_.at(0, 0).error);
  EXPECT_TRUE(table_.at(0, 1).error);
}

TEST_F(TableTest, PascalTriangleRecalculates) {
  std::unique_ptr<TableData> pascal = GeneratePascalTriangle(7);
  // Row 6 is 1 6 15 20 15 6 1.
  const double expected[] = {1, 6, 15, 20, 15, 6, 1};
  for (int c = 0; c < 7; ++c) {
    EXPECT_DOUBLE_EQ(pascal->Value(6, c), expected[c]) << "col " << c;
  }
  // Poke the apex: the whole triangle rescales.
  pascal->SetNumber(0, 0, 2);
  EXPECT_DOUBLE_EQ(pascal->Value(6, 0), 2);
  EXPECT_DOUBLE_EQ(pascal->Value(6, 3), 40);
}

TEST_F(TableTest, RowColumnInsertDelete) {
  table_.Resize(2, 2);
  table_.SetNumber(0, 0, 1);
  table_.SetNumber(1, 1, 4);
  table_.InsertRow(1);
  EXPECT_EQ(table_.rows(), 3);
  EXPECT_DOUBLE_EQ(table_.Value(0, 0), 1);
  EXPECT_DOUBLE_EQ(table_.Value(2, 1), 4);  // Shifted down.
  table_.DeleteRow(1);
  EXPECT_DOUBLE_EQ(table_.Value(1, 1), 4);
  table_.InsertCol(0);
  EXPECT_EQ(table_.cols(), 3);
  EXPECT_DOUBLE_EQ(table_.Value(0, 1), 1);  // Shifted right.
  table_.DeleteCol(0);
  EXPECT_DOUBLE_EQ(table_.Value(0, 0), 1);
}

TEST_F(TableTest, ChangeNotificationCarriesCell) {
  struct Recorder : Observer {
    void ObservedChanged(Observable*, const Change& change) override { last = change; ++count; }
    Change last;
    int count = 0;
  } recorder;
  table_.Resize(3, 3);
  table_.AddObserver(&recorder);
  table_.SetNumber(2, 1, 9);
  EXPECT_EQ(recorder.count, 1);
  EXPECT_EQ(recorder.last.kind, Change::Kind::kReplaced);
  EXPECT_EQ(recorder.last.pos, 2);
  EXPECT_EQ(recorder.last.detail, 1);
  table_.RemoveObserver(&recorder);
}

TEST_F(TableTest, RoundTripPreservesKindsValuesAndFormulas) {
  table_.Resize(3, 3);
  table_.SetText(0, 0, "totals");
  table_.SetNumber(1, 0, 3.5);
  table_.SetFormula(2, 0, "SUM(A1:A2)+1");
  table_.SetColWidth(1, 90);
  ReadContext ctx;
  std::unique_ptr<DataObject> read = ReadDocument(WriteDocument(table_), &ctx);
  TableData* back = ObjectCast<TableData>(read.get());
  ASSERT_NE(back, nullptr);
  EXPECT_TRUE(ctx.ok());
  EXPECT_EQ(back->rows(), 3);
  EXPECT_EQ(back->cols(), 3);
  EXPECT_EQ(back->at(0, 0).kind, TableData::CellKind::kText);
  EXPECT_EQ(back->DisplayText(0, 0), "totals");
  EXPECT_DOUBLE_EQ(back->Value(1, 0), 3.5);
  EXPECT_EQ(back->at(2, 0).kind, TableData::CellKind::kFormula);
  EXPECT_DOUBLE_EQ(back->Value(2, 0), 4.5);  // Recalculated after load.
  EXPECT_EQ(back->ColWidth(1), 90);
}

TEST_F(TableTest, EmbeddedObjectInCellRoundTrips) {
  Loader::Instance().Require("text");
  table_.Resize(2, 2);
  auto note = std::make_unique<TextData>();
  note->SetText("cell note");
  table_.SetObject(1, 0, std::move(note));
  ReadContext ctx;
  std::unique_ptr<DataObject> read = ReadDocument(WriteDocument(table_), &ctx);
  TableData* back = ObjectCast<TableData>(read.get());
  ASSERT_NE(back, nullptr);
  ASSERT_EQ(back->at(1, 0).kind, TableData::CellKind::kObject);
  TextData* back_note = ObjectCast<TextData>(back->at(1, 0).object.get());
  ASSERT_NE(back_note, nullptr);
  EXPECT_EQ(back_note->GetAllText(), "cell note");
  EXPECT_EQ(back->at(1, 0).view_type, "textview");
}

// ---- TableView ---------------------------------------------------------------------

class TableViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterStandardModules();
    Loader::Instance().Require("table");
    ws_ = WindowSystem::Open("itc");
    im_ = InteractionManager::Create(*ws_, 300, 160, "table");
    table_.Resize(4, 3);
    view_.SetDataObject(&table_);
    im_->SetChild(&view_);
    im_->SetInputFocus(&view_);
    im_->RunOnce();
  }
  void Pump() { im_->RunOnce(); }
  void Type(const std::string& keys) {
    for (char ch : keys) {
      im_->window()->Inject(InputEvent::KeyPress(ch));
    }
    Pump();
  }

  TableData table_;
  TableView view_;
  std::unique_ptr<WindowSystem> ws_;
  std::unique_ptr<InteractionManager> im_;
};

TEST_F(TableViewTest, ClickSelectsCell) {
  Rect cell = view_.CellRect(2, 1);
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, cell.center()));
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseUp, cell.center()));
  Pump();
  EXPECT_EQ(view_.selected_row(), 2);
  EXPECT_EQ(view_.selected_col(), 1);
}

TEST_F(TableViewTest, TypingEditsCellAndReturnCommits) {
  view_.SelectCell(0, 0);
  Type("42\r");
  EXPECT_EQ(table_.at(0, 0).kind, TableData::CellKind::kNumber);
  EXPECT_DOUBLE_EQ(table_.Value(0, 0), 42);
  // Return moved selection down.
  EXPECT_EQ(view_.selected_row(), 1);
  Type("=A1*2\r");
  EXPECT_DOUBLE_EQ(table_.Value(1, 0), 84);
}

TEST_F(TableViewTest, TabCommitsAndMovesRight) {
  view_.SelectCell(0, 0);
  Type("7\t11\r");
  EXPECT_DOUBLE_EQ(table_.Value(0, 0), 7);
  EXPECT_DOUBLE_EQ(table_.Value(0, 1), 11);
}

TEST_F(TableViewTest, GridRenders) {
  Pump();
  const PixelImage& display = im_->window()->Display();
  // Grid lines (sampled away from the selection box around cell 0,0).
  int row_h = view_.RowHeight();
  EXPECT_EQ(display.GetPixel(0, 2 * row_h + 4), kGray);
  int width = table_.ColWidth(0);
  EXPECT_EQ(display.GetPixel(width, 2 * row_h + 4), kGray);
  EXPECT_EQ(display.GetPixel(width + 5, 2 * row_h), kGray);
}

TEST_F(TableViewTest, MenusOfferRowColumnOps) {
  MenuList menus = im_->ComposeMenus();
  ASSERT_NE(menus.Find("Table~Insert Row"), nullptr);
  view_.SelectCell(1, 0);
  EXPECT_TRUE(im_->InvokeMenu("Table~Insert Row"));
  EXPECT_EQ(table_.rows(), 5);
}

TEST_F(TableViewTest, SpreadViewIsAnAliasClass) {
  std::unique_ptr<Object> obj = Loader::Instance().NewObject("spread");
  ASSERT_NE(obj, nullptr);
  EXPECT_TRUE(obj->IsA("tableview"));
}

// ---- Charts (the §2 worked example) ----------------------------------------------------

// Hosts two children side by side.
class SplitLikeHost : public View {
 public:
  void Layout() override {
    if (graphic() == nullptr) {
      return;
    }
    Rect b = graphic()->LocalBounds();
    int half = b.width / 2;
    if (!children().empty()) {
      children()[0]->Allocate(Rect{0, 0, half, b.height}, graphic());
    }
    if (children().size() > 1) {
      children()[1]->Allocate(Rect{half, 0, b.width - half, b.height}, graphic());
    }
  }
};

class ChartTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterStandardModules();
    Loader::Instance().Require("table");
    table_.Resize(4, 2);
    table_.SetText(0, 0, "apples");
    table_.SetNumber(0, 1, 30);
    table_.SetText(1, 0, "pears");
    table_.SetNumber(1, 1, 50);
    table_.SetText(2, 0, "plums");
    table_.SetNumber(2, 1, 20);
    chart_.SetSource(&table_);
    chart_.SetTitle("Fruit");
  }
  TableData table_;
  ChartData chart_;
};

TEST_F(ChartTest, SeriesExtractsLabelsAndValues) {
  std::vector<ChartData::Slice> series = chart_.Series();
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].label, "apples");
  EXPECT_DOUBLE_EQ(series[1].value, 50);
}

TEST_F(ChartTest, ObserverChainForwardsTableChanges) {
  // table -> ChartData -> (observer): the §2 auxiliary-object chain.
  struct Recorder : Observer {
    void ObservedChanged(Observable*, const Change&) override { ++count; }
    int count = 0;
  } recorder;
  chart_.AddObserver(&recorder);
  table_.SetNumber(0, 1, 99);
  EXPECT_EQ(recorder.count, 1);
  EXPECT_DOUBLE_EQ(chart_.Series()[0].value, 99);
  chart_.RemoveObserver(&recorder);
}

TEST_F(ChartTest, ChartStateSurvivesSaveButTableValuesLiveInTable) {
  // §2: "only those values (along with the information that a 'chart' is
  // viewing the table) is saved" — chart holds its own stable view state.
  TextData doc;
  auto owned_table = std::make_unique<TableData>();
  owned_table->Resize(2, 2);
  owned_table->SetText(0, 0, "x");
  owned_table->SetNumber(0, 1, 5);
  TableData* table_raw = owned_table.get();
  doc.InsertObject(0, std::move(owned_table));
  auto owned_chart = std::make_unique<ChartData>();
  owned_chart->SetSource(table_raw);
  owned_chart->SetTitle("axes labelling");
  owned_chart->SetColumns(0, 1);
  doc.InsertObject(1, std::move(owned_chart), "piechartview");

  ReadContext ctx;
  std::unique_ptr<DataObject> read = ReadDocument(WriteDocument(doc), &ctx);
  TextData* back = ObjectCast<TextData>(read.get());
  ASSERT_NE(back, nullptr);
  ASSERT_EQ(back->embedded_count(), 2u);
  ChartData* back_chart = ObjectCast<ChartData>(back->embedded_objects()[1].data.get());
  ASSERT_NE(back_chart, nullptr);
  EXPECT_EQ(back_chart->title(), "axes labelling");
  // The \chartsource reference resolved to the re-read table.
  ASSERT_NE(back_chart->source(), nullptr);
  EXPECT_DOUBLE_EQ(back_chart->Series()[0].value, 5);
}

TEST_F(ChartTest, PieAndBarViewsRenderFromOneChartData) {
  RegisterWindowSystemModules();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 260, 120, "charts");
  // Two different view types on the same data object in one window (§2).
  SplitLikeHost host;
  PieChartView pie;
  BarChartView bar;
  pie.SetDataObject(&chart_);
  bar.SetDataObject(&chart_);
  host.AddChild(&pie);
  host.AddChild(&bar);
  im->SetChild(&host);
  im->RunOnce();
  const PixelImage& display = im->window()->Display();
  // Pie wedge colors appear on the left half, bar colors on the right.
  auto count_colored = [&](int x0, int x1) {
    int n = 0;
    for (int y = 0; y < 120; ++y) {
      for (int x = x0; x < x1; ++x) {
        Color c = display.GetPixel(x, y);
        if (c != kWhite && c != kBlack) {
          ++n;
        }
      }
    }
    return n;
  };
  EXPECT_GT(count_colored(0, 130), 100);
  EXPECT_GT(count_colored(130, 260), 100);
  // A table change repaints both views in the next cycle.
  table_.SetNumber(1, 1, 500);
  uint64_t before = display.Hash();
  im->RunOnce();
  EXPECT_NE(im->window()->Display().Hash(), before);
  pie.SetDataObject(nullptr);
  bar.SetDataObject(nullptr);
}

TEST_F(ChartTest, TwoEmbeddedViewsOnOneTableDataObject) {
  // §2 verbatim: "A text component could have two embedded views on the
  // same data object ... one table data object and two views, a normal
  // table view and a pie chart view."
  Loader::Instance().Require("text");
  TextData doc;
  doc.SetText("numbers and picture: ");
  auto shared_table = std::make_shared<TableData>();
  shared_table->Resize(3, 2);
  shared_table->SetText(0, 0, "apples");
  shared_table->SetNumber(0, 1, 30);
  shared_table->SetText(1, 0, "pears");
  shared_table->SetNumber(1, 1, 50);
  doc.InsertSharedObject(doc.size(), shared_table, "spread");
  doc.InsertSharedObject(doc.size(), shared_table, "piechartview");
  ASSERT_EQ(doc.embedded_count(), 2u);
  EXPECT_EQ(doc.embedded_objects()[0].data.get(), doc.embedded_objects()[1].data.get());
  EXPECT_NE(doc.embedded_objects()[0].anchor_id, doc.embedded_objects()[1].anchor_id);

  // Render: two distinct child views over the one data object.
  RegisterWindowSystemModules();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 400, 220, "shared");
  TextView view;
  view.SetText(&doc);
  im->SetChild(&view);
  im->RunOnce();
  ASSERT_EQ(view.children().size(), 2u);
  EXPECT_TRUE(view.children()[0]->IsA("tableview"));
  EXPECT_TRUE(view.children()[1]->IsA("piechartview"));
  EXPECT_EQ(view.children()[0]->data_object(), view.children()[1]->data_object());

  // Serialization writes the table once and references it twice.
  std::string serialized = WriteDocument(doc);
  size_t first = serialized.find("\\begindata{table,");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(serialized.find("\\begindata{table,", first + 1), std::string::npos);
  EXPECT_NE(serialized.find("\\view{spread,"), std::string::npos);
  EXPECT_NE(serialized.find("\\view{piechartview,"), std::string::npos);

  // Reading restores the sharing.
  ReadContext ctx;
  std::unique_ptr<DataObject> read = ReadDocument(serialized, &ctx);
  TextData* back = ObjectCast<TextData>(read.get());
  ASSERT_NE(back, nullptr);
  ASSERT_EQ(back->embedded_count(), 2u);
  EXPECT_EQ(back->embedded_objects()[0].data.get(), back->embedded_objects()[1].data.get());
  // An edit through the shared object repaints both views.
  im->RunOnce();
  uint64_t before = im->window()->Display().Hash();
  shared_table->SetNumber(1, 1, 500);
  im->RunOnce();
  EXPECT_NE(im->window()->Display().Hash(), before);
  view.SetText(nullptr);
}

TEST_F(ChartTest, PieChartDirectlyOnTableData) {
  // The §2 sentence taken literally: the pie chart viewing the table data
  // object itself (no auxiliary ChartData).
  PieChartView pie;
  pie.SetDataObject(&table_);
  std::vector<ChartData::Slice> series = pie.Series();
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].label, "apples");
  EXPECT_DOUBLE_EQ(series[1].value, 50);
  pie.SetDataObject(nullptr);
}

TEST_F(ChartTest, SeriesSkipsTextAndErrorRows) {
  table_.SetFormula(1, 1, "1/0");  // Error row drops out.
  table_.SetText(2, 1, "n/a");     // Text row drops out.
  std::vector<ChartData::Slice> series = chart_.Series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].label, "apples");
}

}  // namespace
}  // namespace atk
