// Unit tests for the graphics substrate: geometry, regions, the framebuffer,
// fonts and the Graphic drawable.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/graphics/font.h"
#include "src/graphics/geometry.h"
#include "src/graphics/graphic.h"
#include "src/graphics/pixel_image.h"
#include "src/graphics/region.h"

namespace atk {
namespace {

// ---- Geometry ----------------------------------------------------------------

TEST(Rect, ContainsAndIntersects) {
  Rect r{10, 10, 20, 10};
  EXPECT_TRUE(r.Contains(Point{10, 10}));
  EXPECT_TRUE(r.Contains(Point{29, 19}));
  EXPECT_FALSE(r.Contains(Point{30, 10}));  // Half-open.
  EXPECT_FALSE(r.Contains(Point{10, 20}));
  EXPECT_TRUE(r.Intersects(Rect{25, 15, 50, 50}));
  EXPECT_FALSE(r.Intersects(Rect{30, 10, 5, 5}));
  EXPECT_FALSE(r.Intersects(Rect{}));
}

TEST(Rect, IntersectUnion) {
  Rect a{0, 0, 10, 10};
  Rect b{5, 5, 10, 10};
  EXPECT_EQ(a.Intersect(b), (Rect{5, 5, 5, 5}));
  EXPECT_EQ(a.Union(b), (Rect{0, 0, 15, 15}));
  EXPECT_TRUE(a.Intersect(Rect{20, 20, 5, 5}).IsEmpty());
  EXPECT_EQ(a.Union(Rect{}), a);
  EXPECT_EQ(Rect{}.Union(b), b);
}

TEST(Rect, InsetAndArea) {
  Rect r{0, 0, 10, 10};
  EXPECT_EQ(r.Inset(2), (Rect{2, 2, 6, 6}));
  EXPECT_EQ(r.Inset(-1), (Rect{-1, -1, 12, 12}));
  EXPECT_EQ(r.Area(), 100);
  EXPECT_TRUE(r.Inset(5).IsEmpty());
}

TEST(Rect, ContainsRect) {
  Rect outer{0, 0, 100, 100};
  EXPECT_TRUE(outer.Contains(Rect{10, 10, 20, 20}));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Rect{90, 90, 20, 20}));
}

// ---- Region ---------------------------------------------------------------------

TEST(Region, AddKeepsDisjointArea) {
  Region region;
  region.Add(Rect{0, 0, 10, 10});
  region.Add(Rect{5, 5, 10, 10});  // Overlaps by 5x5.
  EXPECT_EQ(region.Area(), 100 + 100 - 25);
  // Adding a fully covered rect changes nothing.
  region.Add(Rect{2, 2, 3, 3});
  EXPECT_EQ(region.Area(), 175);
}

TEST(Region, SubtractAndCovers) {
  Region region(Rect{0, 0, 10, 10});
  region.Subtract(Rect{0, 0, 5, 10});
  EXPECT_EQ(region.Area(), 50);
  EXPECT_FALSE(region.Contains(Point{2, 2}));
  EXPECT_TRUE(region.Contains(Point{7, 2}));
  EXPECT_TRUE(region.Covers(Rect{5, 0, 5, 10}));
  EXPECT_FALSE(region.Covers(Rect{4, 0, 5, 10}));
}

TEST(Region, SubtractCenterLeavesFrame) {
  Region region(Rect{0, 0, 10, 10});
  region.Subtract(Rect{3, 3, 4, 4});
  EXPECT_EQ(region.Area(), 100 - 16);
  EXPECT_TRUE(region.Contains(Point{0, 0}));
  EXPECT_FALSE(region.Contains(Point{5, 5}));
  EXPECT_TRUE(region.Contains(Point{9, 9}));
}

TEST(Region, BoundsAndIntersects) {
  Region region;
  region.Add(Rect{0, 0, 5, 5});
  region.Add(Rect{20, 20, 5, 5});
  EXPECT_EQ(region.Bounds(), (Rect{0, 0, 25, 25}));
  EXPECT_TRUE(region.Intersects(Rect{4, 4, 2, 2}));
  EXPECT_FALSE(region.Intersects(Rect{10, 10, 5, 5}));
}

TEST(Region, IntersectWithAndTranslate) {
  Region region(Rect{0, 0, 10, 10});
  region.IntersectWith(Rect{5, 0, 10, 10});
  EXPECT_EQ(region.Area(), 50);
  region.Translate(100, 100);
  EXPECT_TRUE(region.Contains(Point{105, 105}));
  EXPECT_EQ(region.Area(), 50);
}

TEST(Region, CoalescingManyPostsStaysBounded) {
  // The IM posts many overlapping rects per cycle; disjointness must hold.
  Region region;
  for (int i = 0; i < 50; ++i) {
    region.Add(Rect{i, i, 20, 20});
  }
  // Area of the union of the staircase, checked against brute force.
  int64_t expected = 0;
  for (int y = 0; y < 70; ++y) {
    for (int x = 0; x < 70; ++x) {
      bool in = false;
      for (int i = 0; i < 50 && !in; ++i) {
        in = x >= i && x < i + 20 && y >= i && y < i + 20;
      }
      expected += in ? 1 : 0;
    }
  }
  EXPECT_EQ(region.Area(), expected);
}

// Property-based check of the banded region algebra against a brute-force
// pixel-bitmap oracle.  Each seed drives a random sequence of
// Add/Subtract/IntersectWith/Translate ops (rect and region operands); after
// every op the region must agree with the bitmap on membership, Area(),
// Bounds(), Covers(), and its materialized rects must tile the set without
// overlap.
class RegionPropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(RegionPropertySweep, MatchesBitmapOracle) {
  constexpr int kW = 96;
  constexpr int kH = 96;
  const Rect window{0, 0, kW, kH};
  uint64_t seed = static_cast<uint64_t>(GetParam()) * 0x9e3779b97f4a7c15ull + 0x2545f491ull;
  auto next = [&seed]() {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return seed;
  };
  auto rand_rect = [&next]() {
    int x = static_cast<int>(next() % 80);
    int y = static_cast<int>(next() % 80);
    int w = 1 + static_cast<int>(next() % 16);
    int h = 1 + static_cast<int>(next() % 16);
    return Rect{x, y, w, h};
  };

  Region region;
  std::vector<uint8_t> oracle(kW * kH, 0);

  for (int step = 0; step < 32; ++step) {
    int op = static_cast<int>(next() % 7);
    if (op <= 2) {
      // Rect operand.
      Rect r = rand_rect();
      for (int y = r.y; y < r.y + r.height; ++y) {
        for (int x = r.x; x < r.x + r.width; ++x) {
          if (op == 0) {
            oracle[y * kW + x] = 1;
          } else if (op == 1) {
            oracle[y * kW + x] = 0;
          }
        }
      }
      if (op == 0) {
        region.Add(r);
      } else if (op == 1) {
        region.Subtract(r);
      } else {
        for (int y = 0; y < kH; ++y) {
          for (int x = 0; x < kW; ++x) {
            if (!r.Contains(Point{x, y})) {
              oracle[y * kW + x] = 0;
            }
          }
        }
        region.IntersectWith(r);
      }
    } else if (op <= 5) {
      // Region operand built from a few random rects.
      Region other;
      std::vector<uint8_t> other_bits(kW * kH, 0);
      int pieces = 1 + static_cast<int>(next() % 3);
      for (int i = 0; i < pieces; ++i) {
        Rect r = rand_rect();
        other.Add(r);
        for (int y = r.y; y < r.y + r.height; ++y) {
          for (int x = r.x; x < r.x + r.width; ++x) {
            other_bits[y * kW + x] = 1;
          }
        }
      }
      for (int i = 0; i < kW * kH; ++i) {
        if (op == 3) {
          oracle[i] = static_cast<uint8_t>(oracle[i] | other_bits[i]);
        } else if (op == 4) {
          oracle[i] = static_cast<uint8_t>(oracle[i] & static_cast<uint8_t>(!other_bits[i]));
        } else {
          oracle[i] = static_cast<uint8_t>(oracle[i] & other_bits[i]);
        }
      }
      if (op == 3) {
        region.Add(other);
      } else if (op == 4) {
        region.Subtract(other);
      } else {
        region.IntersectWith(other);
      }
    } else {
      // Translate, clipped back into the oracle window on both sides.
      int dx = static_cast<int>(next() % 9) - 4;
      int dy = static_cast<int>(next() % 9) - 4;
      region.Translate(dx, dy);
      region.IntersectWith(window);
      std::vector<uint8_t> shifted(kW * kH, 0);
      for (int y = 0; y < kH; ++y) {
        for (int x = 0; x < kW; ++x) {
          int sx = x - dx;
          int sy = y - dy;
          if (sx >= 0 && sx < kW && sy >= 0 && sy < kH) {
            shifted[y * kW + x] = oracle[sy * kW + sx];
          }
        }
      }
      oracle = std::move(shifted);
    }

    // Membership, Area and Bounds vs the oracle.
    int64_t want_area = 0;
    Rect want_bounds;
    for (int y = 0; y < kH; ++y) {
      for (int x = 0; x < kW; ++x) {
        bool want = oracle[y * kW + x] != 0;
        bool got = region.Contains(Point{x, y});
        if (got != want) {
          ASSERT_EQ(got, want) << "seed " << GetParam() << " step " << step << " at (" << x
                               << "," << y << ")\n"
                               << region.ToString();
        }
        if (want) {
          ++want_area;
          want_bounds = want_bounds.Union(Rect{x, y, 1, 1});
        }
      }
    }
    ASSERT_EQ(region.Area(), want_area) << "seed " << GetParam() << " step " << step;
    ASSERT_EQ(region.Bounds(), want_bounds) << "seed " << GetParam() << " step " << step;

    // The materialized rects must tile the set exactly once (disjointness).
    std::vector<uint8_t> paint(kW * kH, 0);
    int64_t rect_area_sum = 0;
    for (const Rect& r : region.rects()) {
      ASSERT_FALSE(r.IsEmpty());
      rect_area_sum += r.Area();
      for (int y = r.y; y < r.y + r.height; ++y) {
        for (int x = r.x; x < r.x + r.width; ++x) {
          ASSERT_GE(x, 0);
          ASSERT_GE(y, 0);
          ASSERT_LT(x, kW);
          ASSERT_LT(y, kH);
          ASSERT_EQ(paint[y * kW + x], 0)
              << "overlapping rects at (" << x << "," << y << ") seed " << GetParam();
          paint[y * kW + x] = 1;
        }
      }
    }
    ASSERT_EQ(rect_area_sum, want_area) << "seed " << GetParam() << " step " << step;

    // Covers() on a random probe rect agrees with the bitmap.
    Rect probe = rand_rect();
    bool want_covers = true;
    for (int y = probe.y; y < probe.y + probe.height && want_covers; ++y) {
      for (int x = probe.x; x < probe.x + probe.width; ++x) {
        if (oracle[y * kW + x] == 0) {
          want_covers = false;
          break;
        }
      }
    }
    ASSERT_EQ(region.Covers(probe), want_covers)
        << "seed " << GetParam() << " step " << step << " probe " << probe.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionPropertySweep, ::testing::Range(1, 65));

// ---- PixelImage ---------------------------------------------------------------------

TEST(PixelImage, FillAndReadBack) {
  PixelImage img(10, 10);
  EXPECT_EQ(img.GetPixel(0, 0), kWhite);
  img.FillRect(Rect{2, 2, 3, 3}, kBlack);
  EXPECT_EQ(img.GetPixel(2, 2), kBlack);
  EXPECT_EQ(img.GetPixel(4, 4), kBlack);
  EXPECT_EQ(img.GetPixel(5, 5), kWhite);
  // Out-of-range reads are white, writes ignored.
  EXPECT_EQ(img.GetPixel(-1, 0), kWhite);
  img.SetPixel(100, 100, kBlack);
  EXPECT_EQ(img.GetPixel(100, 100), kWhite);
}

TEST(PixelImage, BlitClipsBothEnds) {
  PixelImage src(4, 4, kBlack);
  PixelImage dst(10, 10);
  dst.Blit(src, src.bounds(), Point{8, 8});
  EXPECT_EQ(dst.GetPixel(8, 8), kBlack);
  EXPECT_EQ(dst.GetPixel(9, 9), kBlack);
  EXPECT_EQ(dst.GetPixel(7, 7), kWhite);
  dst.Blit(src, src.bounds(), Point{-2, -2});
  EXPECT_EQ(dst.GetPixel(0, 0), kBlack);
  EXPECT_EQ(dst.GetPixel(1, 1), kBlack);
  EXPECT_EQ(dst.GetPixel(2, 2), kWhite);
}

TEST(PixelImage, HashAndDiff) {
  PixelImage a(8, 8);
  PixelImage b(8, 8);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_EQ(a.DiffCount(b), 0);
  b.SetPixel(3, 3, kBlack);
  EXPECT_NE(a.Hash(), b.Hash());
  EXPECT_EQ(a.DiffCount(b), 1);
}

TEST(PixelImage, PpmHeader) {
  PixelImage img(2, 1, kBlack);
  std::string ppm = img.ToPpm();
  EXPECT_EQ(ppm.rfind("P3\n2 1\n255\n", 0), 0u);
}

// ---- Fonts ------------------------------------------------------------------------------

TEST(FontSpec, ParseAndToString) {
  FontSpec spec = FontSpec::Parse("andy12b");
  EXPECT_EQ(spec.family, "andy");
  EXPECT_EQ(spec.size, 12);
  EXPECT_EQ(spec.style, unsigned{kBold});
  EXPECT_EQ(spec.ToString(), "andy12b");
  FontSpec bi = FontSpec::Parse("times24bi");
  EXPECT_EQ(bi.family, "times");
  EXPECT_EQ(bi.size, 24);
  EXPECT_EQ(bi.style, unsigned{kBold} | unsigned{kItalic});
}

TEST(Font, MetricsScaleWithSize) {
  const Font& small = Font::Get(FontSpec{"andy", 10, kPlain});
  const Font& large = Font::Get(FontSpec{"andy", 20, kPlain});
  EXPECT_EQ(small.scale(), 1);
  EXPECT_EQ(large.scale(), 2);
  EXPECT_EQ(small.ascent(), 7);
  EXPECT_EQ(large.ascent(), 14);
  EXPECT_EQ(small.advance(), 6);
  EXPECT_EQ(large.advance(), 12);
  EXPECT_EQ(small.StringWidth("hello"), 30);
}

TEST(Font, GlyphsAreDistinct) {
  const Font& font = Font::Default();
  // Render 'A' and 'B' into bit signatures and compare.
  auto signature = [&](char ch) {
    uint64_t bits = 0;
    for (int y = 0; y < font.ascent(); ++y) {
      for (int x = 0; x < 5; ++x) {
        bits = (bits << 1) | (font.GlyphBit(ch, x, y) ? 1 : 0);
      }
    }
    return bits;
  };
  EXPECT_NE(signature('A'), signature('B'));
  EXPECT_NE(signature('0'), signature('O'));
  EXPECT_EQ(signature(' '), 0u);
  // All printable glyphs except space have some ink.
  for (int c = 33; c <= 126; ++c) {
    EXPECT_NE(signature(static_cast<char>(c)), 0u) << "glyph " << c << " is blank";
  }
}

TEST(Font, BoldAddsInkItalicShears) {
  const Font& plain = Font::Get(FontSpec{"andy", 10, kPlain});
  const Font& bold = Font::Get(FontSpec{"andy", 10, kBold});
  int plain_ink = 0;
  int bold_ink = 0;
  for (int y = 0; y < 7; ++y) {
    for (int x = 0; x < 7; ++x) {
      plain_ink += plain.GlyphBit('H', x, y) ? 1 : 0;
      bold_ink += bold.GlyphBit('H', x, y) ? 1 : 0;
    }
  }
  EXPECT_GT(bold_ink, plain_ink);
  const Font& italic = Font::Get(FontSpec{"andy", 10, kItalic});
  // Top row of 'H' shifts right under the shear: column 0 empty.
  EXPECT_TRUE(plain.GlyphBit('H', 0, 0));
  EXPECT_FALSE(italic.GlyphBit('H', 0, 0));
}

TEST(Font, CharIndexAtForHitTesting) {
  const Font& font = Font::Default();
  EXPECT_EQ(font.CharIndexAt(0), 0);
  EXPECT_EQ(font.CharIndexAt(5), 0);
  EXPECT_EQ(font.CharIndexAt(6), 1);
  EXPECT_EQ(font.CharIndexAt(-3), 0);
}

// ---- Graphic -----------------------------------------------------------------------------

class GraphicTest : public ::testing::Test {
 protected:
  GraphicTest() : image_(64, 64), graphic_(&image_, image_.bounds()) {}
  PixelImage image_;
  ImageGraphic graphic_;
};

TEST_F(GraphicTest, FillAndEraseRect) {
  graphic_.FillRect(Rect{10, 10, 10, 10});
  EXPECT_EQ(image_.GetPixel(10, 10), kBlack);
  EXPECT_EQ(image_.GetPixel(19, 19), kBlack);
  EXPECT_EQ(image_.GetPixel(20, 20), kWhite);
  graphic_.EraseRect(Rect{10, 10, 5, 5});
  EXPECT_EQ(image_.GetPixel(10, 10), kWhite);
  EXPECT_EQ(image_.GetPixel(15, 15), kBlack);
}

TEST_F(GraphicTest, DrawLineEndpoints) {
  graphic_.DrawLine(Point{0, 0}, Point{10, 10});
  EXPECT_EQ(image_.GetPixel(0, 0), kBlack);
  EXPECT_EQ(image_.GetPixel(5, 5), kBlack);
  EXPECT_EQ(image_.GetPixel(10, 10), kBlack);
  EXPECT_EQ(image_.GetPixel(10, 0), kWhite);
}

TEST_F(GraphicTest, MoveToLineToTracksCurrentPoint) {
  graphic_.MoveTo(Point{5, 5});
  graphic_.LineTo(Point{5, 15});
  EXPECT_EQ(graphic_.current_point(), (Point{5, 15}));
  EXPECT_EQ(image_.GetPixel(5, 10), kBlack);
}

TEST_F(GraphicTest, DrawRectIsHollow) {
  graphic_.DrawRect(Rect{10, 10, 10, 10});
  EXPECT_EQ(image_.GetPixel(10, 10), kBlack);
  EXPECT_EQ(image_.GetPixel(19, 19), kBlack);
  EXPECT_EQ(image_.GetPixel(14, 14), kWhite);
}

TEST_F(GraphicTest, ClipRestrictsDrawing) {
  graphic_.PushClip(Rect{0, 0, 8, 8});
  graphic_.FillRect(Rect{0, 0, 20, 20});
  EXPECT_EQ(image_.GetPixel(7, 7), kBlack);
  EXPECT_EQ(image_.GetPixel(8, 8), kWhite);
  graphic_.PopClip();
  graphic_.FillRect(Rect{10, 10, 2, 2});
  EXPECT_EQ(image_.GetPixel(10, 10), kBlack);
}

TEST_F(GraphicTest, NestedClipsIntersect) {
  graphic_.PushClip(Rect{0, 0, 10, 10});
  graphic_.PushClip(Rect{5, 5, 10, 10});
  graphic_.FillRect(Rect{0, 0, 64, 64});
  EXPECT_EQ(image_.GetPixel(6, 6), kBlack);
  EXPECT_EQ(image_.GetPixel(4, 4), kWhite);
  EXPECT_EQ(image_.GetPixel(11, 11), kWhite);
}

TEST_F(GraphicTest, SubGraphicTranslatesAndClips) {
  std::unique_ptr<Graphic> sub = graphic_.CreateSub(Rect{20, 20, 10, 10});
  EXPECT_EQ(sub->LocalBounds(), (Rect{0, 0, 10, 10}));
  sub->FillRect(Rect{0, 0, 100, 100});  // Clipped to its allocation.
  EXPECT_EQ(image_.GetPixel(20, 20), kBlack);
  EXPECT_EQ(image_.GetPixel(29, 29), kBlack);
  EXPECT_EQ(image_.GetPixel(30, 30), kWhite);
  EXPECT_EQ(image_.GetPixel(19, 19), kWhite);
}

TEST_F(GraphicTest, SubSubGraphicComposes) {
  std::unique_ptr<Graphic> sub = graphic_.CreateSub(Rect{10, 10, 30, 30});
  std::unique_ptr<Graphic> subsub = sub->CreateSub(Rect{5, 5, 10, 10});
  subsub->FillRect(subsub->LocalBounds());
  EXPECT_EQ(image_.GetPixel(15, 15), kBlack);
  EXPECT_EQ(image_.GetPixel(24, 24), kBlack);
  EXPECT_EQ(image_.GetPixel(25, 25), kWhite);
  EXPECT_EQ(image_.GetPixel(14, 14), kWhite);
}

TEST_F(GraphicTest, XorModeIsReversible) {
  graphic_.FillRect(Rect{0, 0, 4, 4});
  graphic_.SetTransferMode(TransferMode::kXor);
  graphic_.SetForeground(kWhite);  // XOR with white flips all bits.
  graphic_.FillRect(Rect{0, 0, 8, 8});
  EXPECT_EQ(image_.GetPixel(0, 0), kWhite);
  EXPECT_EQ(image_.GetPixel(5, 5), kBlack);
  graphic_.FillRect(Rect{0, 0, 8, 8});  // Again: restored.
  EXPECT_EQ(image_.GetPixel(0, 0), kBlack);
  EXPECT_EQ(image_.GetPixel(5, 5), kWhite);
}

TEST_F(GraphicTest, InvertRectIsReversible) {
  graphic_.FillRect(Rect{0, 0, 4, 4});
  graphic_.InvertRect(Rect{0, 0, 8, 8});
  EXPECT_EQ(image_.GetPixel(0, 0), kWhite);
  EXPECT_EQ(image_.GetPixel(6, 6), kBlack);
  graphic_.InvertRect(Rect{0, 0, 8, 8});
  EXPECT_EQ(image_.GetPixel(0, 0), kBlack);
  EXPECT_EQ(image_.GetPixel(6, 6), kWhite);
}

TEST_F(GraphicTest, OrModeOnlyDarkens) {
  graphic_.FillRect(Rect{0, 0, 4, 4});
  graphic_.SetTransferMode(TransferMode::kOr);
  graphic_.SetForeground(kWhite);
  graphic_.FillRect(Rect{0, 0, 8, 8});  // White ink in kOr changes nothing.
  EXPECT_EQ(image_.GetPixel(0, 0), kBlack);
  EXPECT_EQ(image_.GetPixel(6, 6), kWhite);
}

TEST_F(GraphicTest, FillEllipseInscribed) {
  graphic_.FillEllipse(Rect{10, 10, 20, 20});
  EXPECT_EQ(image_.GetPixel(20, 20), kBlack);  // Center.
  EXPECT_EQ(image_.GetPixel(10, 10), kWhite);  // Corner outside circle.
  EXPECT_EQ(image_.GetPixel(20, 11), kBlack);  // Top of circle.
}

TEST_F(GraphicTest, FillPolygonTriangle) {
  const Point tri[] = {{5, 5}, {25, 5}, {15, 25}};
  graphic_.FillPolygon(tri);
  EXPECT_EQ(image_.GetPixel(15, 10), kBlack);
  EXPECT_EQ(image_.GetPixel(5, 20), kWhite);
  EXPECT_EQ(image_.GetPixel(25, 20), kWhite);
}

TEST_F(GraphicTest, DrawStringInksGlyphs) {
  graphic_.DrawString(Point{2, 2}, "Hi");
  // Some ink must appear within the two character cells.
  int ink = 0;
  for (int y = 2; y < 2 + 7; ++y) {
    for (int x = 2; x < 2 + 12; ++x) {
      ink += image_.GetPixel(x, y) == kBlack ? 1 : 0;
    }
  }
  EXPECT_GT(ink, 8);
  // Nothing outside the cells.
  EXPECT_EQ(image_.GetPixel(2 + 13, 5), kWhite);
}

TEST_F(GraphicTest, OpCountTallies) {
  EXPECT_EQ(graphic_.op_count(), 0u);
  graphic_.FillRect(Rect{0, 0, 2, 2});
  graphic_.DrawLine(Point{0, 0}, Point{3, 3});
  graphic_.DrawString(Point{0, 0}, "x");
  EXPECT_EQ(graphic_.op_count(), 3u);
  graphic_.ResetOpCount();
  EXPECT_EQ(graphic_.op_count(), 0u);
}

TEST_F(GraphicTest, ThickLineHasWidth) {
  graphic_.SetLineWidth(3);
  graphic_.DrawLine(Point{10, 30}, Point{50, 30});
  EXPECT_EQ(image_.GetPixel(30, 29), kBlack);
  EXPECT_EQ(image_.GetPixel(30, 30), kBlack);
  EXPECT_EQ(image_.GetPixel(30, 31), kBlack);
  EXPECT_EQ(image_.GetPixel(30, 27), kWhite);
}

TEST_F(GraphicTest, DrawImageCopiesPixels) {
  PixelImage sprite(4, 4, kBlack);
  graphic_.DrawImage(sprite, sprite.bounds(), Point{30, 30});
  EXPECT_EQ(image_.GetPixel(30, 30), kBlack);
  EXPECT_EQ(image_.GetPixel(33, 33), kBlack);
  EXPECT_EQ(image_.GetPixel(34, 34), kWhite);
}

}  // namespace
}  // namespace atk
