// Differential pin for the PR-5 zero-copy lexer rewrite.
//
// The frozen pre-rewrite lexer (BaselineDataStreamReader) and the zero-copy
// DataStreamReader are driven over identical bytes — seeded clean documents,
// truncations at every quartile, and the fault-injection corruption workload
// — and must emit token-for-token identical streams, identical diagnostics,
// and identical recovery flags.  This is what makes the rewrite safe: any
// behavioural divergence, however obscure the input, fails here.
//
// The second half pins the parallel decode stage: a document decoded with 1
// worker, 8 workers, or no workers at all must produce byte-identical
// re-serializations and identical context errors (determinism is a merge-
// order property, not a scheduling accident).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/apps/standard_modules.h"
#include "src/base/data_object.h"
#include "src/class_system/loader.h"
#include "src/components/text/text_data.h"
#include "src/datastream/baseline_reader.h"
#include "src/datastream/reader.h"
#include "src/observability/memory.h"
#include "src/robustness/salvage.h"
#include "src/workload/corruption.h"
#include "src/workload/workload.h"

namespace atk {
namespace {

constexpr uint64_t kSeeds = 64;

const char* KindName(DataStreamReader::Token::Kind kind) {
  using Kind = DataStreamReader::Token::Kind;
  switch (kind) {
    case Kind::kText: return "text";
    case Kind::kBeginData: return "begindata";
    case Kind::kEndData: return "enddata";
    case Kind::kViewRef: return "view";
    case Kind::kDirective: return "directive";
    case Kind::kDiagnostic: return "diagnostic";
    case Kind::kEof: return "eof";
  }
  return "?";
}

// Drives both lexers over `input` and asserts identical token streams,
// diagnostics, and recovery flags.  `label` names the input in failures.
void ExpectLexersAgree(const std::string& input, const std::string& label) {
  DataStreamReader current{std::string(input)};
  BaselineDataStreamReader baseline{std::string(input)};
  using Kind = DataStreamReader::Token::Kind;
  using BaseKind = BaselineDataStreamReader::Token::Kind;

  for (size_t step = 0; step < input.size() + 64; ++step) {
    DataStreamReader::Token got = current.Next();
    BaselineDataStreamReader::Token want = baseline.Next();
    SCOPED_TRACE(label + " token #" + std::to_string(step) + " @" +
                 std::to_string(want.offset));
    ASSERT_EQ(static_cast<int>(got.kind), static_cast<int>(want.kind))
        << "zero-copy lexer produced " << KindName(got.kind);
    ASSERT_EQ(got.text, want.text);
    ASSERT_EQ(got.type, want.type);
    ASSERT_EQ(got.id, want.id);
    ASSERT_EQ(got.offset, want.offset);
    ASSERT_EQ(current.depth(), baseline.depth());
    if (got.kind == Kind::kEof) {
      ASSERT_EQ(want.kind, BaseKind::kEof);
      break;
    }
  }

  EXPECT_EQ(current.truncated(), baseline.truncated()) << label;
  EXPECT_EQ(current.saw_malformed(), baseline.saw_malformed()) << label;
  ASSERT_EQ(current.diagnostics().size(), baseline.diagnostics().size()) << label;
  for (size_t i = 0; i < current.diagnostics().size(); ++i) {
    SCOPED_TRACE(label + " diagnostic #" + std::to_string(i));
    EXPECT_EQ(current.diagnostics()[i].code, baseline.diagnostics()[i].code);
    EXPECT_EQ(current.diagnostics()[i].offset, baseline.diagnostics()[i].offset);
    EXPECT_EQ(current.diagnostics()[i].message, baseline.diagnostics()[i].message);
  }
}

class DatastreamDifferential : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterStandardModules();
    Loader::Instance().Require("text");
    Loader::Instance().Require("table");
    Loader::Instance().Require("drawing");
    Loader::Instance().Require("equation");
    Loader::Instance().Require("raster");
  }
};

TEST_F(DatastreamDifferential, SixtyFourSeedCleanDocumentSweep) {
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    ExpectLexersAgree(GenerateSerializedDocument(seed),
                      "seed " + std::to_string(seed) + " clean");
  }
}

TEST_F(DatastreamDifferential, SixtyFourSeedTruncationSweep) {
  // Chop every seeded document at each quartile and one byte short — the
  // truncation paths (mid-text, mid-directive, mid-marker) must recover
  // identically, including the "N marker(s) still open" diagnostics.
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    std::string full = GenerateSerializedDocument(seed);
    for (size_t cut : {full.size() / 4, full.size() / 2, 3 * full.size() / 4,
                       full.size() - 1}) {
      ExpectLexersAgree(full.substr(0, cut), "seed " + std::to_string(seed) +
                                                 " cut@" + std::to_string(cut));
    }
  }
}

TEST_F(DatastreamDifferential, SixtyFourSeedCorruptionSweep) {
  // The fault-injection workload mangles markers, drops bytes, and flips
  // characters; both lexers must diagnose the damage identically, and the
  // salvager's repair of that damage must re-read clean through the
  // zero-copy reader exactly as it did through the old one.
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    CorruptionScenario scenario = RunCorruptionScenario(seed);
    ExpectLexersAgree(scenario.corrupted,
                      "seed " + std::to_string(seed) + " corrupted");
    ExpectLexersAgree(scenario.salvaged,
                      "seed " + std::to_string(seed) + " salvaged");

    // Salvage-report equivalence: salvaging the same bytes again must see the
    // same damage (the salvager consumes reader diagnostics downstream), and
    // salvaged output must parse with no diagnostics in the new reader.
    SalvageReport report;
    DataStreamSalvager salvager;
    std::string resalvaged = salvager.Salvage(scenario.corrupted, &report);
    EXPECT_EQ(resalvaged, scenario.salvaged) << "seed " << seed;
    DataStreamReader clean_check{std::string(scenario.salvaged)};
    while (clean_check.Next().kind != DataStreamReader::Token::Kind::kEof) {
    }
    EXPECT_TRUE(clean_check.diagnostics().empty()) << "seed " << seed;
    EXPECT_FALSE(clean_check.truncated()) << "seed " << seed;
  }
}

TEST_F(DatastreamDifferential, ZeroCopyInvariantOnWorkloadDocuments) {
  // Generated documents are escape-light; the bulk of their bytes must flow
  // through as pinned-buffer views, not arena copies.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    std::string full = GenerateSerializedDocument(seed);
    DataStreamReader reader{std::string(full)};
    while (reader.Next().kind != DataStreamReader::Token::Kind::kEof) {
    }
    EXPECT_LT(reader.scratch_bytes(), full.size() / 4)
        << "seed " << seed << ": unescape arena copied too much";
  }
}

std::string SerializeCompound(uint64_t seed) {
  WorkloadRng rng(seed);
  CompoundDocumentSpec spec;
  spec.paragraphs = 12;
  spec.nesting_depth = 2;
  spec.tables = 2;
  spec.drawings = 2;
  spec.equations = 1;
  spec.rasters = 1;
  std::unique_ptr<TextData> doc = GenerateCompoundDocument(rng, spec);
  return WriteDocument(*doc);
}

TEST_F(DatastreamDifferential, ParallelDecodeIsDeterministic) {
  // N=1 and N=8 workers must produce byte-identical documents — and both
  // must match the serial (no worker pool) decode.  Runs under the sanitize
  // label so TSan sees the worker pool with real contention.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    std::string serialized = SerializeCompound(seed);

    ReadContext serial_ctx;
    std::unique_ptr<DataObject> serial = ReadDocument(serialized, &serial_ctx);
    ASSERT_NE(serial, nullptr) << "seed " << seed;
    std::string serial_out = WriteDocument(*serial);

    for (int workers : {1, 8}) {
      ReadContext ctx;
      ctx.EnableDeferredDecode(workers);
      std::unique_ptr<DataObject> parallel = ReadDocument(serialized, &ctx);
      ASSERT_NE(parallel, nullptr) << "seed " << seed << " workers " << workers;
      EXPECT_EQ(WriteDocument(*parallel), serial_out)
          << "seed " << seed << " workers " << workers;
      EXPECT_EQ(ctx.errors(), serial_ctx.errors())
          << "seed " << seed << " workers " << workers;
    }
  }
}

TEST_F(DatastreamDifferential, ParallelDecodeSurvivesCorruptionWorkload) {
  // Damaged embedded objects must fail identically whether decoded inline or
  // on a worker: same document out, same error list.
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    CorruptionScenario scenario = RunCorruptionScenario(seed);

    ReadContext serial_ctx;
    std::unique_ptr<DataObject> serial =
        ReadDocument(scenario.salvaged, &serial_ctx);
    std::string serial_out = serial ? WriteDocument(*serial) : std::string();

    ReadContext parallel_ctx;
    parallel_ctx.EnableDeferredDecode(8);
    std::unique_ptr<DataObject> parallel =
        ReadDocument(scenario.salvaged, &parallel_ctx);
    std::string parallel_out = parallel ? WriteDocument(*parallel) : std::string();

    EXPECT_EQ(parallel_out, serial_out) << "seed " << seed;
    // Serial decode interleaves a child's errors at its decode position;
    // Phase B merges them after the root's own.  Same set, different order.
    std::vector<std::string> serial_errors = serial_ctx.errors();
    std::vector<std::string> parallel_errors = parallel_ctx.errors();
    std::sort(serial_errors.begin(), serial_errors.end());
    std::sort(parallel_errors.begin(), parallel_errors.end());
    EXPECT_EQ(parallel_errors, serial_errors) << "seed " << seed;
  }
}

TEST_F(DatastreamDifferential, OrphanedCaptureIsCopiedWhenOwnerDiesBeforeDrain) {
  // A component can read an embedded child during Phase A and then discard
  // it (a \cellobject whose \view reference was lost to damage).  The queued
  // capture's views point into the decode's buffer, whose lifetime was tied
  // to the dead owner — CancelDeferred must copy the bytes into the
  // context's own arena so the Phase B throwaway decode never reads through
  // a dangling view.  Regression: the buffer is scribbled after the owner
  // dies; under the old borrow-only path the throwaway decode would parse
  // the scribbles (and read freed memory for a heap buffer).
  ReadContext ctx;
  ctx.EnableDeferredDecode(2);

  std::string transient = "captured child body\n\\enddata{text,7}\n";
  {
    std::unique_ptr<DataObject> victim =
        ObjectCast<DataObject>(Loader::Instance().NewObject("text"));
    ASSERT_NE(victim, nullptr);
    DataStreamReader::RawCapture capture;
    capture.with_end = transient;
    capture.body = std::string_view(transient).substr(0, transient.find("\\enddata"));
    capture.complete = true;
    ctx.QueueDeferred(victim.get(), "text", 7, capture);
    // `victim` dies here: ~DataObject routes through CancelDeferred.
  }
  std::fill(transient.begin(), transient.end(), 'X');

  ctx.DrainDeferred();
  EXPECT_TRUE(ctx.ok()) << (ctx.errors().empty() ? "" : ctx.errors().front());
}

TEST_F(DatastreamDifferential, OrphanedCaptureBytesReleaseWhenContextDies) {
  // The orphan-copy arena CancelDeferred builds is charged to
  // `datastream.mem.orphan` while the context holds it, and released when
  // the context dies without draining — the leak-shaped path.  Regression:
  // the arena used to be invisible to the accountant, so a pile-up of
  // cancelled captures in a long-lived context could not be seen or
  // budgeted.
  observability::MemoryAccount& orphan =
      observability::MemoryAccountant::Instance().account("datastream.mem.orphan");
  const int64_t base = orphan.current();

  std::string transient = "orphaned child body\n\\enddata{text,9}\n";
  {
    ReadContext ctx;
    ctx.EnableDeferredDecode(2);
    {
      std::unique_ptr<DataObject> victim =
          ObjectCast<DataObject>(Loader::Instance().NewObject("text"));
      ASSERT_NE(victim, nullptr);
      DataStreamReader::RawCapture capture;
      capture.with_end = transient;
      capture.body = std::string_view(transient).substr(0, transient.find("\\enddata"));
      capture.complete = true;
      ctx.QueueDeferred(victim.get(), "text", 9, capture);
      // CancelDeferred copies the capture into the context's orphan arena...
    }
    EXPECT_GE(orphan.current(), base + static_cast<int64_t>(transient.size()));
    // ...and the undrained context dying must hand every byte back.
  }
  EXPECT_EQ(orphan.current(), base);
}

}  // namespace
}  // namespace atk
