// The self-hosted inspector (DESIGN.md §8): live introspection views over
// the observability spine, per-view frame attribution, the slow-frame
// flight recorder, and the host-side wiring (ATK_INSPECT, ESC-i).
//
// The EnvAutoOpensOnFirstRunOnce test only runs when ATK_INSPECT is set in
// the environment — the flag is latched once per process, so it gets its
// own ctest entry (inspector_env_autoopen) with the variable exported, and
// skips in the plain suite run.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/standard_modules.h"
#include "src/base/interaction_manager.h"
#include "src/class_system/loader.h"
#include "src/components/table/chart.h"
#include "src/components/table/table_data.h"
#include "src/components/text/text_data.h"
#include "src/components/text/text_view.h"
#include "src/observability/inspector/inspector.h"
#include "src/observability/inspector/inspector_views.h"
#include "src/observability/memory.h"
#include "src/observability/observability.h"
#include "src/observability/trace_component.h"
#include "src/wm/window_system.h"

namespace atk {
namespace {

using observability::MetricsRegistry;
using observability::SpanRecord;
using observability::Tracer;
using observability::TraceSnapshot;

SpanRecord MakeSpan(const char* name, uint64_t start_ns, uint64_t duration_ns, uint64_t seq,
                    uint32_t thread, uint16_t depth) {
  SpanRecord span;
  std::strncpy(span.name, name, SpanRecord::kNameCapacity - 1);
  span.name[SpanRecord::kNameCapacity - 1] = '\0';
  span.start_ns = start_ns;
  span.duration_ns = duration_ns;
  span.seq = seq;
  span.thread = thread;
  span.depth = depth;
  return span;
}

uint64_t CounterValue(std::string_view name) {
  return MetricsRegistry::Instance().counter(name).value();
}

TEST(Inspector, EnvAutoOpensOnFirstRunOnce) {
  const char* env = std::getenv("ATK_INSPECT");
  if (env == nullptr || *env == '\0' || *env == '0') {
    GTEST_SKIP() << "ATK_INSPECT not set; covered by the inspector_env_autoopen ctest entry";
  }
  RegisterStandardModules();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 320, 240, "host");
  View child;
  im->SetChild(&child);
  EXPECT_FALSE(im->inspector_open());
  im->RunOnce();
  EXPECT_TRUE(im->inspector_open()) << "ATK_INSPECT must auto-open the inspector";
  ASSERT_NE(im->inspector(), nullptr);
  EXPECT_TRUE(im->inspector()->is_inspector());
  // The env request fires once per window: closing the inspector sticks.
  im->CloseInspector();
  im->RunOnce();
  EXPECT_FALSE(im->inspector_open());
}

TEST(Inspector, OpenCloseToggleLifecycle) {
  RegisterStandardModules();
  Tracer::Instance().SetEnabled(false);
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 320, 240, "host");
  View child;
  im->SetChild(&child);
  im->RunOnce();

  uint64_t opened_before = CounterValue("inspector.window.opened");
  ASSERT_FALSE(im->inspector_open());
  ASSERT_TRUE(im->OpenInspector());
  EXPECT_TRUE(im->inspector_open());
  EXPECT_TRUE(Loader::Instance().IsLoaded("inspector")) << "factory demand-loads the module";
  EXPECT_EQ(CounterValue("inspector.window.opened"), opened_before + 1);
  // Opening the inspector turns tracing on so its panels have spans to show.
  EXPECT_TRUE(observability::Enabled());

  ASSERT_NE(im->inspector(), nullptr);
  EXPECT_TRUE(im->inspector()->is_inspector());
  InspectorData* data = GetInspectorData(im->inspector());
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->host(), im.get());
  EXPECT_GE(data->refresh_count(), 1u) << "first snapshot happens before the first paint";

  // The view-tree browser flattened the host into rows: the IM at depth 0,
  // its child below it.
  ASSERT_GE(data->tree_rows().size(), 2u);
  EXPECT_EQ(data->tree_rows()[0].depth, 0);
  EXPECT_EQ(data->tree_rows()[1].depth, 1);

  // Idempotent while open; an inspector never inspects itself.
  EXPECT_TRUE(im->OpenInspector());
  EXPECT_FALSE(im->inspector()->OpenInspector());

  // Toggle closes, toggle reopens; closing restores the tracing state.
  EXPECT_FALSE(im->ToggleInspector());
  EXPECT_FALSE(im->inspector_open());
  EXPECT_FALSE(observability::Enabled()) << "closing restores the pre-open tracing state";
  EXPECT_EQ(GetInspectorData(im->inspector()), nullptr);
  EXPECT_TRUE(im->ToggleInspector());
  EXPECT_TRUE(im->inspector_open());
  im->CloseInspector();
  EXPECT_FALSE(im->inspector_open());
  EXPECT_FALSE(observability::Enabled());
}

TEST(Inspector, EscIKeybindingToggles) {
  RegisterStandardModules();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 320, 240, "host");
  View child;
  im->SetChild(&child);
  im->RunOnce();
  ASSERT_FALSE(im->inspector_open());

  // ESC then i, as two raw keystrokes walking the IM's own keymap.
  im->window()->Inject(InputEvent::KeyPress('\033'));
  im->window()->Inject(InputEvent::KeyPress('i'));
  im->RunOnce();
  EXPECT_TRUE(im->inspector_open()) << "ESC-i opens the inspector";

  // Meta-i is the same chord spelled with the modifier.
  im->window()->Inject(InputEvent::KeyPress('i', kMetaMod));
  im->RunOnce();
  EXPECT_FALSE(im->inspector_open()) << "ESC-i again closes it";
}

TEST(Inspector, CadenceHonorsRefreshPeriod) {
  InspectorData data;
  data.SetRefreshPeriodNs(1000);
  EXPECT_EQ(data.refresh_count(), 0u);
  EXPECT_TRUE(data.MaybeRefresh(1'000'000)) << "the first tick always refreshes";
  EXPECT_FALSE(data.MaybeRefresh(1'000'500)) << "half a period elapsed";
  EXPECT_FALSE(data.MaybeRefresh(1'000'999));
  EXPECT_TRUE(data.MaybeRefresh(1'001'000)) << "a full period elapsed";
  EXPECT_EQ(data.refresh_count(), 2u);
}

TEST(Inspector, AttributeFramesPerViewSlices) {
  std::vector<SpanRecord> spans;
  // Cycle 1: 10 us, two view slices, one span on another thread and one
  // outside the interval that must both be excluded.
  spans.push_back(MakeSpan("update.textview", 2000, 4000, 3, 0, 1));
  spans.push_back(MakeSpan("update.barchartview", 6100, 2000, 4, 0, 1));
  spans.push_back(MakeSpan("update.textview", 2000, 4000, 2, 1, 1));     // Other thread.
  spans.push_back(MakeSpan("layout.pass.run", 2500, 100, 1, 0, 1));      // Not an update span.
  spans.push_back(MakeSpan("im.update.cycle", 1000, 10000, 5, 0, 0));
  spans.push_back(MakeSpan("update.scrollview", 20000, 100, 6, 0, 1));   // After the cycle.
  // Cycle 2: fast and empty.
  spans.push_back(MakeSpan("im.update.cycle", 30000, 500, 9, 0, 0));

  std::vector<InspectorData::FrameProfile> frames = InspectorData::AttributeFrames(spans, 5000);
  ASSERT_EQ(frames.size(), 2u);

  const InspectorData::FrameProfile& slow = frames[0];
  EXPECT_EQ(slow.cycle_seq, 5u);
  EXPECT_EQ(slow.duration_ns, 10000u);
  EXPECT_TRUE(slow.over_budget);
  ASSERT_EQ(slow.slices.size(), 2u) << "exactly the two nested update spans";
  EXPECT_EQ(slow.slices[0].name, "update.textview") << "longest slice first";
  EXPECT_EQ(slow.slices[0].duration_ns, 4000u);
  EXPECT_EQ(slow.slices[1].name, "update.barchartview");

  const InspectorData::FrameProfile& fast = frames[1];
  EXPECT_EQ(fast.cycle_seq, 9u);
  EXPECT_FALSE(fast.over_budget);
  EXPECT_TRUE(fast.slices.empty());
}

TEST(Inspector, FlightRecorderFreezesSlowFrames) {
  Tracer& tracer = Tracer::Instance();
  tracer.SetCapacity(256);
  tracer.Clear();
  uint32_t tid = Tracer::ThreadId();
  // An 8 ms cycle with a 3 ms view slice, recorded directly into the ring.
  tracer.Record("update.textview", 2'000'000, 5'000'000, 1, tid);
  tracer.Record("im.update.cycle", 1'000'000, 9'000'000, 0, tid);

  InspectorData data;
  data.SetFrameBudgetNs(5'000'000);
  uint64_t captured_before = CounterValue("inspector.flight.captured");
  data.Refresh();

  ASSERT_EQ(data.frames().size(), 1u);
  EXPECT_TRUE(data.frames()[0].over_budget);
  ASSERT_EQ(data.frames()[0].slices.size(), 1u);
  EXPECT_EQ(data.frames()[0].slices[0].name, "update.textview");

  EXPECT_EQ(data.flight_captures(), 1u);
  EXPECT_TRUE(data.has_flight_record());
  EXPECT_EQ(CounterValue("inspector.flight.captured"), captured_before + 1);

  // The frozen record is a §5 datastream document that round-trips.
  TraceSnapshot back;
  Status status = observability::SnapshotFromDatastream(data.flight_record(), &back);
  ASSERT_TRUE(status.ok()) << status.ToString();
  bool has_cycle = false;
  for (const SpanRecord& span : back.spans) {
    has_cycle = has_cycle || span.name_view() == "im.update.cycle";
  }
  EXPECT_TRUE(has_cycle);

  // Re-refreshing without a new slow cycle must not re-capture.
  data.Refresh();
  EXPECT_EQ(data.flight_captures(), 1u);

  // A later slow cycle triggers a fresh capture.
  tracer.Record("im.update.cycle", 20'000'000, 31'000'000, 0, tid);
  data.Refresh();
  EXPECT_EQ(data.flight_captures(), 2u);

  // The Perfetto view of the frozen ring names the slow cycle.
  std::string json = data.ExportFlightPerfettoJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("im.update.cycle"), std::string::npos);

  tracer.SetCapacity(Tracer::kDefaultCapacity);
  tracer.Clear();
}

TEST(Inspector, MetricsPanelTableAndChart) {
  MetricsRegistry::Instance().counter("inspector.demo.sample").Add(7);
  MetricsRegistry::Instance().histogram("inspector.demo.waited").Observe(100);

  InspectorData data;
  data.Refresh();
  TableData* table = data.metrics_table();
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->cols(), 2);
  ASSERT_GT(table->rows(), 0);
  ASSERT_GT(data.counter_row_count(), 0);
  ASSERT_LE(data.counter_row_count(), table->rows());

  // Counter rows come first; ours is among them with its value.
  bool found_counter = false;
  for (int r = 0; r < data.counter_row_count(); ++r) {
    if (table->at(r, 0).text == "inspector.demo.sample") {
      found_counter = true;
      EXPECT_GE(table->Value(r, 1), 7.0);
    }
  }
  EXPECT_TRUE(found_counter);

  // Histogram percentile rows ride behind the counters.
  bool found_percentile = false;
  for (int r = data.counter_row_count(); r < table->rows(); ++r) {
    if (table->at(r, 0).text == "inspector.demo.waited.p95") {
      found_percentile = true;
    }
  }
  EXPECT_TRUE(found_percentile);

  // The chart is the §2 observer chain over the same table, clipped to the
  // counter rows.
  ChartData* chart = data.metrics_chart();
  ASSERT_NE(chart, nullptr);
  EXPECT_EQ(chart->source(), table);
  std::vector<ChartData::Slice> series = chart->Series();
  EXPECT_FALSE(series.empty());
  EXPECT_LE(series.size(), static_cast<size_t>(data.counter_row_count()));
}

TEST(Inspector, ServerPanelSessionsTableAndChart) {
  // The sessions table derives purely from the server.endpoint_* gauges —
  // no pointer into the server layer — so feeding the registry the same
  // gauges the document server publishes is a faithful fixture.
  MetricsRegistry& registry = MetricsRegistry::Instance();
  registry.gauge("server.endpoint_1.rtt_ticks").Set(3);
  registry.gauge("server.endpoint_1.queue_depth").Set(2);
  registry.gauge("server.endpoint_1.retransmits").Set(1);
  registry.gauge("server.endpoint_1.epoch").Set(1);
  registry.gauge("server.endpoint_2.rtt_ticks").Set(9);
  registry.gauge("server.endpoint_2.queue_depth").Set(0);
  registry.gauge("server.endpoint_2.retransmits").Set(4);
  registry.gauge("server.endpoint_2.epoch").Set(2);

  InspectorData data;
  data.Refresh();
  TableData* table = data.sessions_table();
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->cols(), 5);
  ASSERT_GE(data.session_row_count(), 2);
  bool found_one = false;
  bool found_two = false;
  for (int r = 0; r < data.session_row_count(); ++r) {
    if (table->at(r, 0).text == "session 1") {
      found_one = true;
      EXPECT_EQ(table->Value(r, 1), 3.0);  // rtt
      EXPECT_EQ(table->Value(r, 2), 2.0);  // queue depth
      EXPECT_EQ(table->Value(r, 3), 1.0);  // retransmits
      EXPECT_EQ(table->Value(r, 4), 1.0);  // epoch
    } else if (table->at(r, 0).text == "session 2") {
      found_two = true;
      EXPECT_EQ(table->Value(r, 1), 9.0);
      EXPECT_EQ(table->Value(r, 3), 4.0);
    }
  }
  EXPECT_TRUE(found_one);
  EXPECT_TRUE(found_two);

  // The RTT chart is the §2 observer chain over the sessions table.
  ChartData* chart = data.sessions_chart();
  ASSERT_NE(chart, nullptr);
  EXPECT_EQ(chart->source(), table);
  EXPECT_FALSE(chart->Series().empty());
}

TEST(Inspector, ServerChurnTriggersFlightCapture) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  InspectorData data;
  data.Refresh();
  uint64_t before = data.flight_captures();

  // An eviction between refreshes freezes the ring as a trace document.
  registry.counter("server.sessions.evicted").Add(1);
  data.Refresh();
  EXPECT_EQ(data.flight_captures(), before + 1);
  EXPECT_TRUE(data.has_flight_record());
  EXPECT_NE(data.flight_record().find("\\begindata{trace"), std::string::npos);

  // Quiet refreshes must not re-capture...
  data.Refresh();
  EXPECT_EQ(data.flight_captures(), before + 1);

  // ...but a client resync is churn again.
  registry.counter("client.session.reconnects").Add(1);
  data.Refresh();
  EXPECT_EQ(data.flight_captures(), before + 2);
}

// A host giving every child an equal horizontal slot.
class RowHost : public View {
 public:
  void Layout() override {
    if (graphic() == nullptr || children().empty()) {
      return;
    }
    Rect b = graphic()->LocalBounds();
    int w = std::max(1, b.width / static_cast<int>(children().size()));
    for (size_t i = 0; i < children().size(); ++i) {
      children()[i]->Allocate(Rect{static_cast<int>(i) * w, 0, w, b.height}, graphic());
    }
  }
};

// Runs the scripted chart workload and records the host display hash after
// every step; with `with_inspector` the inspector rides along, refreshing on
// every host cycle (period 0 — harsher than the 10 Hz default).
void RunChartWorkload(bool with_inspector, std::vector<uint64_t>* hashes) {
  RegisterStandardModules();
  Loader::Instance().Require("table");

  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 360, 240, "host");
  TableData table;
  table.Resize(5, 2);
  for (int r = 0; r < 5; ++r) {
    table.SetText(r, 0, "row" + std::to_string(r));
    table.SetNumber(r, 1, r * 10 + 5);
  }
  ChartData chart;
  chart.SetSource(&table);
  RowHost host;
  PieChartView pie;
  BarChartView bar;
  pie.SetDataObject(&chart);
  bar.SetDataObject(&chart);
  host.AddChild(&pie);
  host.AddChild(&bar);
  im->SetChild(&host);
  im->RunOnce();

  if (with_inspector) {
    ASSERT_TRUE(im->OpenInspector());
    InspectorData* data = GetInspectorData(im->inspector());
    ASSERT_NE(data, nullptr);
    data->SetRefreshPeriodNs(0);
  }

  hashes->push_back(im->window()->Display().Hash());
  for (int step = 0; step < 6; ++step) {
    table.SetNumber(step % 5, 1, step * 13 + 1);
    if (step == 3) {
      table.SetText(1, 0, "edited");
    }
    im->RunOnce();
    hashes->push_back(im->window()->Display().Hash());
  }

  if (with_inspector) {
    im->CloseInspector();
  }
  // Detaching must leave the remaining steps identical too.
  table.SetNumber(0, 1, 321);
  im->RunOnce();
  hashes->push_back(im->window()->Display().Hash());

  pie.SetDataObject(nullptr);
  bar.SetDataObject(nullptr);
}

TEST(Inspector, HostRepaintsByteIdenticalWithInspectorAttached) {
  std::vector<uint64_t> without;
  RunChartWorkload(false, &without);
  std::vector<uint64_t> with;
  RunChartWorkload(true, &with);
  ASSERT_EQ(without.size(), with.size());
  for (size_t step = 0; step < without.size(); ++step) {
    EXPECT_EQ(without[step], with[step])
        << "host display diverged at step " << step << " with the inspector attached";
  }
}

TEST(Inspector, ReconnectStormMergesExposeWithPendingDamage) {
  // Connection-drop storm with the inspector attached: every round edits the
  // document (queueing damage) and then kills the wire *before* the update
  // cycle runs.  The next RunOnce reconnects, and the replayed full-window
  // expose must merge with that pending damage into one repaint — pixels
  // after every stormy cycle must match the hashes of the same document
  // states painted with a healthy connection.
  RegisterStandardModules();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 320, 240, "host");
  TextData data;
  data.SetText("storm line one\nstorm line two\nstorm line three\n");
  TextView view;
  view.SetDataObject(&data);
  im->SetChild(&view);
  im->RunOnce();

  ASSERT_TRUE(im->OpenInspector());
  InspectorData* panels = GetInspectorData(im->inspector());
  ASSERT_NE(panels, nullptr);
  panels->SetRefreshPeriodNs(0);
  im->RunOnce();

  // Reference hashes for both document states over a healthy connection.
  const std::string edit = "edited!\n";
  uint64_t ref_base = im->window()->Display().Hash();
  data.InsertString(0, edit);
  im->RunOnce();
  uint64_t ref_edited = im->window()->Display().Hash();
  data.DeleteRange(0, static_cast<int64_t>(edit.size()));
  im->RunOnce();
  ASSERT_EQ(im->window()->Display().Hash(), ref_base);
  ASSERT_NE(ref_base, ref_edited) << "the edit must actually change pixels";

  int reconnects_before = im->window()->reconnect_count();
  for (int round = 1; round <= 8; ++round) {
    data.InsertString(0, edit);  // Pending damage...
    im->window()->InjectConnectionDrop();  // ...then the wire dies mid-cycle.
    im->RunOnce();
    EXPECT_TRUE(im->window()->connected()) << "round " << round;
    EXPECT_EQ(im->window()->Display().Hash(), ref_edited) << "round " << round;

    data.DeleteRange(0, static_cast<int64_t>(edit.size()));
    im->window()->InjectConnectionDrop();
    im->RunOnce();
    EXPECT_EQ(im->window()->Display().Hash(), ref_base) << "round " << round;
  }
  EXPECT_EQ(im->window()->reconnect_count(), reconnects_before + 16);
  EXPECT_TRUE(im->inspector_open()) << "the inspector must ride out the storm";

  im->CloseInspector();
  im->SetChild(nullptr);
}

TEST(Inspector, MemoryPanelTableChartAndTotals) {
  // The memory panel derives purely from the accountant: accounts first
  // (name, current, peak — overlays labeled), census rows behind them
  // ("live <class>": bytes, count), and the chart clipped to the accounts.
  observability::MemoryAccountant& accountant =
      observability::MemoryAccountant::Instance();
  observability::ScopedCharge charge(accountant.account("test.mem.panel"), 8192);
  observability::ScopedCharge shadow(accountant.overlay("test.mem.panelshadow"), 512);

  InspectorData data;
  data.Refresh();
  TableData* table = data.memory_table();
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->cols(), 3);
  ASSERT_GT(data.memory_row_count(), 0);
  ASSERT_LE(data.memory_row_count(), table->rows());

  bool found_account = false;
  bool found_overlay = false;
  for (int r = 0; r < data.memory_row_count(); ++r) {
    if (table->at(r, 0).text == "test.mem.panel") {
      found_account = true;
      EXPECT_EQ(table->Value(r, 1), 8192.0);
      EXPECT_GE(table->Value(r, 2), 8192.0);  // peak
    } else if (table->at(r, 0).text == "test.mem.panelshadow (overlay)") {
      found_overlay = true;
      EXPECT_EQ(table->Value(r, 1), 512.0);
    }
  }
  EXPECT_TRUE(found_account);
  EXPECT_TRUE(found_overlay);

  // Totals mirror the accountant: exclusive charge counted, overlay not.
  EXPECT_EQ(data.memory_total_bytes(), accountant.total());
  EXPECT_GE(data.memory_peak_bytes(), data.memory_total_bytes());

  // The chart is the §2 observer chain over the same table, clipped to the
  // account rows (census rows chart in different units and stay out).
  ChartData* chart = data.memory_chart();
  ASSERT_NE(chart, nullptr);
  EXPECT_EQ(chart->source(), table);
  EXPECT_FALSE(chart->Series().empty());
  EXPECT_LE(chart->Series().size(), static_cast<size_t>(data.memory_row_count()));

  // Releasing the charge shows up on the next refresh.
  charge.Resize(0);
  data.Refresh();
  for (int r = 0; r < data.memory_row_count(); ++r) {
    if (data.memory_table()->at(r, 0).text == "test.mem.panel") {
      EXPECT_EQ(data.memory_table()->Value(r, 1), 0.0);
    }
  }
}

TEST(Inspector, MemoryPanelViewLifecycle) {
  // The live panel inside an open inspector window: demand-loaded with the
  // module, bound to the shared InspectorData, children materialized on the
  // first paint, and torn down cleanly with the window.
  RegisterStandardModules();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 360, 280, "host");
  View child;
  im->SetChild(&child);
  im->RunOnce();

  ASSERT_TRUE(im->OpenInspector());
  InspectorData* data = GetInspectorData(im->inspector());
  ASSERT_NE(data, nullptr);
  data->SetRefreshPeriodNs(0);
  im->RunOnce();

  // Find the panel under the inspector window's root view.
  MemoryPanelView* panel = nullptr;
  std::vector<View*> stack = {im->inspector()->child()};
  while (!stack.empty() && panel == nullptr) {
    View* view = stack.back();
    stack.pop_back();
    if (view == nullptr) {
      continue;
    }
    panel = ObjectCast<MemoryPanelView>(view);
    for (View* grandchild : view->children()) {
      stack.push_back(grandchild);
    }
  }
  ASSERT_NE(panel, nullptr) << "inspector window lost its memory panel";
  EXPECT_EQ(panel->inspector(), data);

  // The first paint materialized the table/chart children over the shared
  // InspectorData tables.
  ASSERT_NE(panel->table_view(), nullptr);
  ASSERT_NE(panel->chart_view(), nullptr);
  EXPECT_EQ(panel->table_view()->data_object(), data->memory_table());
  EXPECT_EQ(panel->chart_view()->data_object(), data->memory_chart());

  // A charge landing between host cycles flows through refresh into the
  // panel's table on the next cycle.
  observability::MemoryAccountant& accountant =
      observability::MemoryAccountant::Instance();
  {
    observability::ScopedCharge charge(accountant.account("test.mem.lifecycle"), 4096);
    im->RunOnce();
    bool found = false;
    TableData* table = data->memory_table();
    for (int r = 0; r < data->memory_row_count(); ++r) {
      if (table->at(r, 0).text == "test.mem.lifecycle") {
        found = true;
        EXPECT_EQ(table->Value(r, 1), 4096.0);
      }
    }
    EXPECT_TRUE(found);
  }

  // Close tears the window (and panel) down; the host keeps painting.
  im->CloseInspector();
  im->RunOnce();
  EXPECT_FALSE(im->inspector_open());
  im->SetChild(nullptr);
}

}  // namespace
}  // namespace atk
