// Tests for the text component: gap buffer, TextData (styles, embedding,
// external representation), TextView (layout, editing, selection, hit
// testing, scrolling) and PagedTextView.

#include <gtest/gtest.h>

#include "src/apps/standard_modules.h"
#include "src/base/interaction_manager.h"
#include "src/class_system/loader.h"
#include "src/components/frame/unknown_view.h"
#include "src/components/raster/raster_data.h"
#include "src/components/text/gap_buffer.h"
#include "src/components/text/paged_text_view.h"
#include "src/components/text/text_data.h"
#include "src/components/text/text_view.h"
#include "src/wm/window_system.h"

namespace atk {
namespace {

// ---- GapBuffer -------------------------------------------------------------

TEST(GapBuffer, InsertAndRead) {
  GapBuffer buffer;
  buffer.Insert(0, "hello");
  EXPECT_EQ(buffer.size(), 5);
  EXPECT_EQ(buffer.All(), "hello");
  buffer.Insert(5, " world");
  EXPECT_EQ(buffer.All(), "hello world");
  buffer.Insert(5, ",");
  EXPECT_EQ(buffer.All(), "hello, world");
  EXPECT_EQ(buffer.At(0), 'h');
  EXPECT_EQ(buffer.At(11), 'd');
}

TEST(GapBuffer, DeleteRanges) {
  GapBuffer buffer;
  buffer.Insert(0, "hello, world");
  buffer.Delete(5, 2);
  EXPECT_EQ(buffer.All(), "helloworld");
  buffer.Delete(0, 5);
  EXPECT_EQ(buffer.All(), "world");
  buffer.Delete(3, 100);  // Over-long delete clamps.
  EXPECT_EQ(buffer.All(), "wor");
}

TEST(GapBuffer, GrowsPastInitialCapacity) {
  GapBuffer buffer;
  std::string big(1000, 'x');
  buffer.Insert(0, big);
  buffer.Insert(500, "MID");
  EXPECT_EQ(buffer.size(), 1003);
  EXPECT_EQ(buffer.Substr(500, 3), "MID");
}

TEST(GapBuffer, FindAndRFind) {
  GapBuffer buffer;
  buffer.Insert(0, "one\ntwo\nthree");
  EXPECT_EQ(buffer.Find('\n', 0), 3);
  EXPECT_EQ(buffer.Find('\n', 4), 7);
  EXPECT_EQ(buffer.Find('\n', 8), -1);
  EXPECT_EQ(buffer.RFind('\n', 7), 3);
  EXPECT_EQ(buffer.RFind('\n', 13), 7);
  EXPECT_EQ(buffer.RFind('\n', 3), -1);
}

TEST(GapBuffer, GapMovesWithEdits) {
  GapBuffer buffer;
  buffer.Insert(0, "abcdef");
  buffer.Insert(3, "X");  // Gap at 4.
  EXPECT_EQ(buffer.gap_position(), 4);
  buffer.Insert(1, "Y");  // Gap moved left.
  EXPECT_EQ(buffer.All(), "aYbcXdef");
}

// Property: a GapBuffer and a std::string given the same operations agree.
TEST(GapBuffer, MatchesReferenceStringUnderRandomOps) {
  GapBuffer buffer;
  std::string reference;
  uint64_t state = 12345;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int step = 0; step < 2000; ++step) {
    if (reference.empty() || next() % 3 != 0) {
      size_t pos = reference.empty() ? 0 : next() % (reference.size() + 1);
      std::string chunk(1 + next() % 5, static_cast<char>('a' + next() % 26));
      buffer.Insert(static_cast<int64_t>(pos), chunk);
      reference.insert(pos, chunk);
    } else {
      size_t pos = next() % reference.size();
      size_t len = 1 + next() % 4;
      buffer.Delete(static_cast<int64_t>(pos), static_cast<int64_t>(len));
      reference.erase(pos, std::min(len, reference.size() - pos));
    }
  }
  EXPECT_EQ(buffer.All(), reference);
  EXPECT_EQ(buffer.size(), static_cast<int64_t>(reference.size()));
}

// ---- TextData ----------------------------------------------------------------

class TextDataTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterStandardModules();
    Loader::Instance().Require("text");
  }
  TextData text_;
};

TEST_F(TextDataTest, InsertDeleteAndLineBookkeeping) {
  text_.InsertString(0, "one\ntwo\nthree\n");
  EXPECT_EQ(text_.size(), 14);
  EXPECT_EQ(text_.LineCount(), 4);  // Trailing newline opens a 4th line.
  EXPECT_EQ(text_.PosOfLine(1), 4);
  EXPECT_EQ(text_.LineOfPos(5), 1);
  EXPECT_EQ(text_.LineStart(5), 4);
  EXPECT_EQ(text_.LineEnd(5), 7);
  text_.DeleteRange(3, 1);  // Remove the first newline.
  EXPECT_EQ(text_.LineCount(), 3);
  EXPECT_EQ(text_.GetAllText(), "onetwo\nthree\n");
}

TEST_F(TextDataTest, ChangeNotificationsCarryPositions) {
  struct Recorder : Observer {
    void ObservedChanged(Observable*, const Change& change) override { changes.push_back(change); }
    std::vector<Change> changes;
  } recorder;
  text_.AddObserver(&recorder);
  text_.InsertString(0, "hello");
  text_.DeleteRange(1, 2);
  ASSERT_EQ(recorder.changes.size(), 2u);
  EXPECT_EQ(recorder.changes[0].kind, Change::Kind::kInserted);
  EXPECT_EQ(recorder.changes[0].pos, 0);
  EXPECT_EQ(recorder.changes[0].added, 5);
  EXPECT_EQ(recorder.changes[1].kind, Change::Kind::kDeleted);
  EXPECT_EQ(recorder.changes[1].pos, 1);
  EXPECT_EQ(recorder.changes[1].removed, 2);
  text_.RemoveObserver(&recorder);
}

TEST_F(TextDataTest, StyleRunsSplitAndMerge) {
  text_.InsertString(0, "the quick brown fox");
  text_.ApplyStyle(4, 5, "bold");  // "quick"
  EXPECT_EQ(text_.StyleNameAt(4), "bold");
  EXPECT_EQ(text_.StyleNameAt(8), "bold");
  EXPECT_EQ(text_.StyleNameAt(9), "default");
  EXPECT_EQ(text_.StyleNameAt(3), "default");
  // Overlapping application splits correctly.
  text_.ApplyStyle(7, 8, "italic");  // "ck brown"
  EXPECT_EQ(text_.StyleNameAt(5), "bold");
  EXPECT_EQ(text_.StyleNameAt(7), "italic");
  EXPECT_EQ(text_.StyleNameAt(14), "italic");
  EXPECT_EQ(text_.StyleNameAt(15), "default");
  // Clearing restores default.
  text_.ClearStyles(0, text_.size());
  EXPECT_TRUE(text_.style_runs().empty());
}

TEST_F(TextDataTest, StylesFollowEdits) {
  text_.InsertString(0, "abcdef");
  text_.ApplyStyle(2, 2, "bold");  // "cd"
  text_.InsertString(0, "XY");     // Shifts runs right.
  EXPECT_EQ(text_.StyleNameAt(4), "bold");
  EXPECT_EQ(text_.StyleNameAt(2), "default");
  text_.InsertString(5, "!");      // Inside the styled run: extends it.
  EXPECT_EQ(text_.StyleNameAt(5), "bold");
  text_.DeleteRange(0, 4);         // Delete through the run's start.
  EXPECT_EQ(text_.StyleNameAt(0), "bold");
}

TEST_F(TextDataTest, EmbeddedObjectsTrackPositions) {
  text_.InsertString(0, "before after");
  auto raster = std::make_unique<RasterData>(4, 4);
  DataObject* embedded = text_.InsertObject(6, std::move(raster));
  ASSERT_NE(embedded, nullptr);
  EXPECT_EQ(text_.size(), 13);
  EXPECT_EQ(text_.CharAt(6), TextData::kObjectChar);
  ASSERT_NE(text_.EmbeddedAt(6), nullptr);
  EXPECT_EQ(text_.EmbeddedAt(6)->data.get(), embedded);
  EXPECT_EQ(text_.EmbeddedAt(6)->view_type, "rasterview");
  // Edits before the anchor shift it.
  text_.InsertString(0, "xx");
  EXPECT_EQ(text_.EmbeddedAt(8)->data.get(), embedded);
  // Deleting over the anchor removes the object.
  text_.DeleteRange(7, 3);
  EXPECT_EQ(text_.embedded_count(), 0u);
}

TEST_F(TextDataTest, PlainRoundTrip) {
  text_.InsertString(0, "hello\nworld with \\backslash\\ and {braces}\n");
  text_.ApplyStyle(0, 5, "bold");
  std::string doc = WriteDocument(text_);
  ReadContext ctx;
  std::unique_ptr<DataObject> read = ReadDocument(doc, &ctx);
  ASSERT_NE(read, nullptr);
  TextData* back = ObjectCast<TextData>(read.get());
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->GetAllText(), text_.GetAllText());
  EXPECT_EQ(back->StyleNameAt(0), "bold");
  EXPECT_EQ(back->StyleNameAt(5), "default");
  EXPECT_TRUE(ctx.ok());
}

TEST_F(TextDataTest, EmbeddedRoundTripMatchesPaperExample) {
  text_.InsertString(0, "text data ...\n");
  auto raster = std::make_unique<RasterData>(4, 4);
  raster->Set(1, 1, true);
  text_.InsertObject(text_.size(), std::move(raster));
  text_.InsertString(text_.size(), "more text data ...\n");

  std::string doc = WriteDocument(text_);
  // §5's structure: nested begindata/enddata plus a \view placement.
  EXPECT_NE(doc.find("\\begindata{text,1}"), std::string::npos);
  EXPECT_NE(doc.find("\\begindata{raster,2}"), std::string::npos);
  EXPECT_NE(doc.find("\\enddata{raster,2}"), std::string::npos);
  EXPECT_NE(doc.find("\\view{rasterview,2}"), std::string::npos);

  ReadContext ctx;
  std::unique_ptr<DataObject> read = ReadDocument(doc, &ctx);
  TextData* back = ObjectCast<TextData>(read.get());
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->embedded_count(), 1u);
  const TextData::EmbeddedObject* embedded = &back->embedded_objects()[0];
  RasterData* back_raster = ObjectCast<RasterData>(embedded->data.get());
  ASSERT_NE(back_raster, nullptr);
  EXPECT_TRUE(back_raster->Get(1, 1));
  EXPECT_FALSE(back_raster->Get(0, 0));
  EXPECT_EQ(back->GetAllText(), text_.GetAllText());
}

TEST_F(TextDataTest, CustomStyleDefinitionsPersist) {
  Style fancy;
  fancy.name = "fancy";
  fancy.font = FontSpec{"andy", 20, kBold | kItalic};
  fancy.indent_left = 12;
  fancy.justify = Justification::kCenter;
  text_.styles().Define(fancy);
  text_.InsertString(0, "styled text");
  text_.ApplyStyle(0, 6, "fancy");
  ReadContext ctx;
  std::unique_ptr<DataObject> read = ReadDocument(WriteDocument(text_), &ctx);
  TextData* back = ObjectCast<TextData>(read.get());
  ASSERT_NE(back, nullptr);
  ASSERT_TRUE(back->styles().Contains("fancy"));
  const Style& restored = back->styles().Get("fancy");
  EXPECT_EQ(restored.font.size, 20);
  EXPECT_EQ(restored.font.style, unsigned{kBold} | unsigned{kItalic});
  EXPECT_EQ(restored.indent_left, 12);
  EXPECT_EQ(restored.justify, Justification::kCenter);
  EXPECT_EQ(back->StyleNameAt(0), "fancy");
}

// ---- TextView --------------------------------------------------------------------

class TextViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterStandardModules();
    Loader::Instance().Require("text");
    ws_ = WindowSystem::Open("itc");
    im_ = InteractionManager::Create(*ws_, 300, 120, "text test");
    view_ = std::make_unique<TextView>();
    view_->SetText(&text_);
    im_->SetChild(view_.get());
    im_->SetInputFocus(view_.get());
    im_->RunOnce();
  }

  void Pump() { im_->RunOnce(); }
  void Type(const std::string& keys) {
    for (char ch : keys) {
      im_->window()->Inject(InputEvent::KeyPress(ch));
    }
    Pump();
  }

  TextData text_;
  std::unique_ptr<WindowSystem> ws_;
  std::unique_ptr<InteractionManager> im_;
  std::unique_ptr<TextView> view_;
};

TEST_F(TextViewTest, TypingInsertsAtCaret) {
  Type("hello");
  EXPECT_EQ(text_.GetAllText(), "hello");
  EXPECT_EQ(view_->dot_pos(), 5);
  Type("\rworld");
  EXPECT_EQ(text_.GetAllText(), "hello\nworld");
}

TEST_F(TextViewTest, BackspaceDeletes) {
  Type("abc");
  Type("\177");
  EXPECT_EQ(text_.GetAllText(), "ab");
  EXPECT_EQ(view_->dot_pos(), 2);
}

TEST_F(TextViewTest, RenderingInksGlyphs) {
  Type("Hello");
  const PixelImage& display = im_->window()->Display();
  int ink = 0;
  for (int y = 0; y < 20; ++y) {
    for (int x = 0; x < 60; ++x) {
      ink += display.GetPixel(x, y) == kBlack ? 1 : 0;
    }
  }
  EXPECT_GT(ink, 20);
}

TEST_F(TextViewTest, EmacsKeysViaKeymap) {
  Type("abcd");
  Type(std::string{Ctl('b')});  // backward-char
  EXPECT_EQ(view_->dot_pos(), 3);
  Type(std::string{Ctl('a')});  // beginning-of-line
  EXPECT_EQ(view_->dot_pos(), 0);
  Type(std::string{Ctl('e')});  // end-of-line
  EXPECT_EQ(view_->dot_pos(), 4);
  Type(std::string{Ctl('d')});  // delete at end: no-op
  EXPECT_EQ(text_.GetAllText(), "abcd");
  Type(std::string{Ctl('a')} + std::string{Ctl('d')});
  EXPECT_EQ(text_.GetAllText(), "bcd");
}

TEST_F(TextViewTest, KillAndYank) {
  Type("first line\rsecond");
  Type(std::string{Ctl('a')});  // Start of "second".
  Type(std::string{Ctl('k')});  // Kill it.
  EXPECT_EQ(text_.GetAllText(), "first line\n");
  Type(std::string{Ctl('y')});  // Yank it back.
  EXPECT_EQ(text_.GetAllText(), "first line\nsecond");
}

TEST_F(TextViewTest, ClickSetsCaretByGeometry) {
  Type("hello world");
  Pump();
  // Click at the 7th character cell (6 px per char, 4 px margin).
  Point target = view_->PointAtPos(6);
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, target));
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseUp, target));
  Pump();
  EXPECT_EQ(view_->dot_pos(), 6);
}

TEST_F(TextViewTest, DragSelectsRange) {
  Type("hello world");
  Pump();
  Point from = view_->PointAtPos(0);
  Point to = view_->PointAtPos(5);
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, from));
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseDrag, to));
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseUp, to));
  Pump();
  EXPECT_EQ(view_->dot_pos(), 0);
  EXPECT_EQ(view_->dot_len(), 5);
  EXPECT_EQ(view_->SelectedText(), "hello");
}

TEST_F(TextViewTest, SelectionTypingReplaces) {
  Type("hello world");
  view_->SetDot(0, 5);
  Type("X");
  EXPECT_EQ(text_.GetAllText(), "X world");
}

TEST_F(TextViewTest, WordWrapBreaksAtSpaces) {
  // 300 px wide view - 14 px margins = ~47 chars; this line must wrap.
  Type("aaaa bbbb cccc dddd eeee ffff gggg hhhh iiii jjjj kkkk");
  Pump();
  EXPECT_GT(view_->visible_line_count(), 1);
  // A wrapped line must not split a word: check layout boundaries land on
  // spaces.
  Point second_line_start = view_->PointAtPos(0);
  (void)second_line_start;
  int64_t first_line_end = 0;
  // Find where line 0 ends by scanning PointAtPos y values.
  int y0 = view_->PointAtPos(0).y;
  for (int64_t i = 1; i < text_.size(); ++i) {
    if (view_->PointAtPos(i).y != y0) {
      first_line_end = i;
      break;
    }
  }
  ASSERT_GT(first_line_end, 1);
  // `first_line_end` is the first position whose y differs; the wrap point
  // itself is attributed to both lines, so the space sits one or two back.
  EXPECT_TRUE(text_.CharAt(first_line_end - 1) == ' ' ||
              text_.CharAt(first_line_end - 2) == ' ')
      << "wrapped line does not start at a word boundary";
}

TEST_F(TextViewTest, StylesChangeGlyphMetrics) {
  Type("big");
  text_.styles().Define([] {
    Style s;
    s.name = "huge";
    s.font = FontSpec{"andy", 30, kPlain};
    return s;
  }());
  text_.ApplyStyle(0, 3, "huge");
  Pump();
  // Line height now reflects the 3x font.
  Point after = view_->PointAtPos(3);
  EXPECT_EQ(after.y, view_->PointAtPos(0).y);
  Type("\rx");
  Pump();
  int second_line_y = view_->PointAtPos(4).y;
  EXPECT_GE(second_line_y, Font::Get(FontSpec{"andy", 30, kPlain}).height());
}

TEST_F(TextViewTest, ScrollableInterfaceReportsLines) {
  for (int i = 0; i < 30; ++i) {
    Type("line\r");
  }
  ScrollInfo info = view_->GetScrollInfo();
  EXPECT_EQ(info.total, 31);
  EXPECT_GT(info.visible, 1);
  EXPECT_LT(info.visible, 31);
  view_->ScrollToUnit(10);
  Pump();
  EXPECT_EQ(view_->GetScrollInfo().first_visible, 10);
  EXPECT_EQ(text_.LineOfPos(view_->top_pos()), 10);
}

TEST_F(TextViewTest, CaretScrollsIntoViewWhenTypingPastBottom) {
  for (int i = 0; i < 40; ++i) {
    Type("x\r");
  }
  // The caret (at the end) must be on a visible line.
  ScrollInfo info = view_->GetScrollInfo();
  int64_t caret_line = text_.LineOfPos(view_->dot_pos());
  EXPECT_GE(caret_line, info.first_visible);
  EXPECT_LE(caret_line, info.first_visible + info.visible);
  EXPECT_GT(info.first_visible, 0);  // It did scroll.
}

TEST_F(TextViewTest, EmbeddedObjectGetsChildViewAndRoutesClicks) {
  Type("ab");
  Loader::Instance().Require("raster");
  auto raster = std::make_unique<RasterData>(8, 8);
  view_->SetDot(1);
  view_->InsertObjectAtDot(std::move(raster));
  Pump();
  ASSERT_EQ(view_->children().size(), 1u);
  View* child = view_->children()[0];
  EXPECT_EQ(child->class_name(), "rasterview");
  EXPECT_FALSE(child->bounds().IsEmpty());
  // Click inside the child's box: the raster view (not the text) takes it.
  Point inside = child->bounds().center();
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, inside));
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseUp, inside));
  Pump();
  RasterData* data = ObjectCast<RasterData>(child->data_object());
  ASSERT_NE(data, nullptr);
  EXPECT_GT(data->Population(), 0);  // The click painted a pixel.
}

TEST_F(TextViewTest, UnknownEmbeddedTypeRendersPlaceholder) {
  std::string doc =
      "\\begindata{text,1}\nsee \\begindata{music,2}\nnotes...\\enddata{music,2}\n"
      "\\view{musicview,2} here\\enddata{text,1}\n";
  ReadContext ctx;
  std::unique_ptr<DataObject> read = ReadDocument(doc, &ctx);
  TextData* music_doc = ObjectCast<TextData>(read.get());
  ASSERT_NE(music_doc, nullptr);
  view_->SetText(music_doc);
  Pump();
  // No view class for "musicview": the embed degrades to an UnknownView
  // placeholder naming the missing class, and the document still has the
  // unknown object for saving.
  ASSERT_EQ(view_->children().size(), 1u);
  UnknownView* placeholder = ObjectCast<UnknownView>(view_->children()[0]);
  ASSERT_NE(placeholder, nullptr);
  EXPECT_EQ(placeholder->MissingType(), "musicview");
  EXPECT_EQ(music_doc->embedded_count(), 1u);
  std::string resaved = WriteDocument(*music_doc);
  EXPECT_NE(resaved.find("notes..."), std::string::npos);
  view_->SetText(&text_);
}

TEST_F(TextViewTest, MenusIncludeEditAndStyleCards) {
  MenuList menus = im_->ComposeMenus();
  EXPECT_NE(menus.Find("Edit~Copy"), nullptr);
  EXPECT_NE(menus.Find("Style~Bold"), nullptr);
  // Style via menu applies to the selection.
  Type("hello");
  view_->SetDot(0, 5);
  EXPECT_TRUE(im_->InvokeMenu("Style~Bold"));
  EXPECT_EQ(text_.StyleNameAt(2), "bold");
}

TEST_F(TextViewTest, DesiredSizeTracksContent) {
  Type("hello");
  Size small = view_->DesiredSize(Size{1000, 1000});
  Type("\rmore text here");
  Size taller = view_->DesiredSize(Size{1000, 1000});
  EXPECT_GT(taller.height, small.height);
  EXPECT_GT(taller.width, small.width);
}

// ---- PagedTextView -----------------------------------------------------------------

TEST_F(TextViewTest, PagedViewSharesDataObject) {
  Type("shared content");
  PagedTextView paged;
  paged.SetText(&text_);
  auto im2 = InteractionManager::Create(*ws_, 300, 200, "page view");
  im2->SetChild(&paged);
  im2->RunOnce();
  // Both views observe the same data object (§2's two-views case).
  EXPECT_EQ(paged.text(), view_->text());
  // An edit through the first view reaches the second window.
  Type("!");
  im2->RunOnce();
  EXPECT_EQ(paged.text()->GetAllText(), "shared content!");
  // The paged view draws its paper sheet: gray desk border at the corner.
  EXPECT_EQ(im2->window()->Display().GetPixel(2, 2), kLightGray);
  paged.SetText(nullptr);
}

TEST_F(TextViewTest, PagedViewPrintsWholeDocumentAcrossPages) {
  for (int i = 0; i < 60; ++i) {
    text_.InsertString(text_.size(), "line " + std::to_string(i) + "\n");
  }
  PagedTextView paged;
  paged.SetText(&text_);
  auto im2 = InteractionManager::Create(*ws_, 300, 200, "page view");
  im2->SetChild(&paged);
  im2->RunOnce();
  EXPECT_GT(paged.PageCount(), 1);
  PrintJob job(300, 200, 8);
  paged.PrintDocument(job);
  EXPECT_GE(job.page_count(), paged.PageCount() - 1);
  // First page has ink; beyond-last-page would not exist.
  EXPECT_GT(job.page(0).DiffCount(PixelImage(300, 200, kWhite)), 50);
  paged.SetText(nullptr);
}

}  // namespace
}  // namespace atk
