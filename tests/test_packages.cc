// Tests for the extension packages (§1's list): the C-language programming
// component, the spelling checker, and two engineering claims — the §8
// "windows on two different window systems at the same time" stretch goal,
// and the porting-boundary rule that nothing above src/wm names a backend.

#include <gtest/gtest.h>

#include <fstream>
#include <functional>
#include <sstream>

#include "src/apps/ez_app.h"
#include "src/apps/standard_modules.h"
#include "src/apps/style_editor.h"
#include "src/base/proctable.h"
#include "src/class_system/loader.h"
#include "src/components/text/text_view.h"
#include "src/wm/window_system.h"

namespace atk {
namespace {

class PackageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterStandardModules();
    Loader::Instance().Require("text");
    Loader::Instance().Require("frame");
    Loader::Instance().Require("scroll");
    ws_ = WindowSystem::Open("itc");
  }
  std::unique_ptr<WindowSystem> ws_;
};

// ---- ctext: the C-language component -------------------------------------------

TEST_F(PackageTest, CTextIsATextSubclassThroughTheClassSystem) {
  ASSERT_TRUE(Loader::Instance().Require("ctext"));
  std::unique_ptr<Object> obj = Loader::Instance().NewObject("ctext");
  ASSERT_NE(obj, nullptr);
  // Single inheritance visible through the class system (§6).
  EXPECT_TRUE(obj->IsA("text"));
  EXPECT_TRUE(obj->IsA("dataobject"));
  EXPECT_EQ(obj->class_name(), "ctext");
  std::unique_ptr<Object> view = Loader::Instance().NewObject("ctextview");
  ASSERT_NE(view, nullptr);
  EXPECT_TRUE(view->IsA("textview"));
}

TEST_F(PackageTest, CTextHighlightsKeywordsCommentsAndStrings) {
  Loader::Instance().Require("ctext");
  std::unique_ptr<DataObject> obj =
      ObjectCast<DataObject>(Loader::Instance().NewObject("ctext"));
  TextData* code = ObjectCast<TextData>(obj.get());
  ASSERT_NE(code, nullptr);
  code->SetText(
      "/* header */\n"
      "int main() {\n"
      "  char* s = \"hello\"; // greet\n"
      "  return 0;\n"
      "}\n");
  // Drive the highlight through the view path: edits re-highlight.
  std::unique_ptr<View> view = ObjectCast<View>(Loader::Instance().NewObject("ctextview"));
  TextView* tv = ObjectCast<TextView>(view.get());
  tv->SetText(code);
  code->InsertString(code->size(), "\n");  // Any edit triggers a highlight.
  std::string content = code->GetAllText();
  auto style_at = [&](const char* needle) {
    return code->StyleNameAt(static_cast<int64_t>(content.find(needle)));
  };
  EXPECT_EQ(style_at("/* header */"), "italic");
  EXPECT_EQ(style_at("int main"), "bold");
  EXPECT_EQ(style_at("char"), "bold");
  EXPECT_EQ(style_at("return"), "bold");
  EXPECT_EQ(style_at("\"hello\""), "typewriter");
  EXPECT_EQ(style_at("// greet"), "italic");
  // "main" is an identifier, not a keyword: plain.
  EXPECT_EQ(code->StyleNameAt(static_cast<int64_t>(content.find("main("))), "default");
  EXPECT_EQ(style_at(" s = "), "default");   // Plain code stays plain.
  tv->SetText(nullptr);
}

TEST_F(PackageTest, CTextRoundTripsAsItsOwnType) {
  Loader::Instance().Require("ctext");
  std::unique_ptr<DataObject> obj =
      ObjectCast<DataObject>(Loader::Instance().NewObject("ctext"));
  TextData* code = ObjectCast<TextData>(obj.get());
  code->SetText("while (1) {}\n");
  std::string doc = WriteDocument(*obj);
  EXPECT_NE(doc.find("\\begindata{ctext,"), std::string::npos);
  ReadContext ctx;
  std::unique_ptr<DataObject> read = ReadDocument(doc, &ctx);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->DataTypeName(), "ctext");
  EXPECT_TRUE(read->IsA("text"));  // The subclass came back, not a plain text.
}

// ---- spell: the spelling checker ---------------------------------------------------

TEST_F(PackageTest, SpellCheckerLoadsOnInvokeAndMarksUnknownWords) {
  Loader::Instance().UnloadAllForTest();
  EzApp ez;
  std::unique_ptr<InteractionManager> im = ez.Start(*ws_, {"ez"});
  ez.text_view()->InsertText("dear david the toolkitz is nice\n");
  EXPECT_FALSE(Loader::Instance().IsLoaded("proc:spell"));
  // Invoke by proc name: the "proc:spell" module loads on demand.
  ASSERT_TRUE(ProcTable::Instance().Invoke("spell-check-region", ez.text_view()));
  EXPECT_TRUE(Loader::Instance().IsLoaded("proc:spell"));
  TextData* doc = ez.document();
  std::string content = doc->GetAllText();
  // "toolkitz" flagged; dictionary words untouched.
  EXPECT_EQ(doc->StyleNameAt(static_cast<int64_t>(content.find("toolkitz"))), "italic");
  EXPECT_EQ(doc->StyleNameAt(static_cast<int64_t>(content.find("david"))), "default");
  EXPECT_EQ(doc->StyleNameAt(static_cast<int64_t>(content.find("nice"))), "default");
  // The frame's message line reports the count.
  EXPECT_EQ(ez.frame()->message_line()->message(), "1 word(s) not in dictionary");
}

TEST_F(PackageTest, SpellCheckerHonorsSelections) {
  Loader::Instance().Require("proc:spell");
  EzApp ez;
  std::unique_ptr<InteractionManager> im = ez.Start(*ws_, {"ez"});
  ez.text_view()->InsertText("zzzz yyyy");
  ez.text_view()->SetDot(0, 4);  // Only "zzzz" selected.
  ASSERT_TRUE(ProcTable::Instance().Invoke("spell-check-region", ez.text_view()));
  TextData* doc = ez.document();
  EXPECT_EQ(doc->StyleNameAt(0), "italic");
  EXPECT_EQ(doc->StyleNameAt(5), "default");  // Outside the region: untouched.
}

// ---- compile & tags packages ------------------------------------------------------

TEST_F(PackageTest, CompileCheckFindsErrorsAndJumps) {
  Loader::Instance().Require("ctext");
  EzApp ez;
  std::unique_ptr<InteractionManager> im = ez.Start(*ws_, {"ez"});
  ez.text_view()->InsertText(
      "int main() {\n"
      "  int x = 1\n"          // Missing ';' on line 1.
      "  return x;\n"
      "}\n");
  EXPECT_FALSE(Loader::Instance().IsLoaded("proc:compile"));
  ASSERT_TRUE(ProcTable::Instance().Invoke("compile-check", ez.text_view()));
  EXPECT_TRUE(Loader::Instance().IsLoaded("proc:compile"));
  // Caret jumped to the offending line.
  EXPECT_EQ(ez.document()->LineOfPos(ez.text_view()->dot_pos()), 1);
  EXPECT_NE(ez.frame()->message_line()->message().find("error"), std::string::npos);
  // Fix it: clean bill of health.
  ez.text_view()->SetDot(ez.document()->LineEnd(ez.text_view()->dot_pos()));
  ez.text_view()->InsertText(";");
  ASSERT_TRUE(ProcTable::Instance().Invoke("compile-check", ez.text_view()));
  EXPECT_EQ(ez.frame()->message_line()->message(), "no errors");
}

TEST_F(PackageTest, TagsJumpToDefinition) {
  EzApp ez;
  std::unique_ptr<InteractionManager> im = ez.Start(*ws_, {"ez"});
  std::string program =
      "int helper(int x) {\n"
      "  return x + 1;\n"
      "}\n"
      "int main() {\n"
      "  return helper(41);\n"
      "}\n";
  ez.text_view()->InsertText(program);
  // Put the caret on the call site's "helper".
  int64_t call_site = static_cast<int64_t>(program.rfind("helper")) + 2;
  ez.text_view()->SetDot(call_site);
  ASSERT_TRUE(ProcTable::Instance().Invoke("tags-find-definition", ez.text_view()));
  // Caret moved to the definition (line 0).
  EXPECT_EQ(ez.document()->LineOfPos(ez.text_view()->dot_pos()), 0);
  EXPECT_EQ(ez.document()->GetText(ez.text_view()->dot_pos(), 6), "helper");
  // Unknown identifier: message, caret unmoved.
  ez.text_view()->SetDot(static_cast<int64_t>(program.find("main")) + 1);
  int64_t before = ez.text_view()->dot_pos();
  (void)before;
  ez.text_view()->SetDot(static_cast<int64_t>(program.find("return")) + 2);
  ASSERT_TRUE(ProcTable::Instance().Invoke("tags-find-definition", ez.text_view()));
  EXPECT_NE(ez.frame()->message_line()->message().find("no tag"), std::string::npos);
}

// ---- style editor ----------------------------------------------------------------

TEST_F(PackageTest, StyleEditorRedefinesStylesAcrossAllViews) {
  Loader::Instance().Require("styleeditor");
  Loader::Instance().Require("widgets");
  TextData doc;
  doc.SetText("heading line\nbody text\n");
  doc.ApplyStyle(0, 12, "heading");
  // Two windows: the document and the style editor.
  TextView text_view;
  text_view.SetText(&doc);
  auto doc_im = InteractionManager::Create(*ws_, 260, 120, "document");
  doc_im->SetChild(&text_view);
  doc_im->RunOnce();

  std::unique_ptr<View> editor_obj =
      ObjectCast<View>(Loader::Instance().NewObject("styleeditor"));
  ASSERT_NE(editor_obj, nullptr);
  StyleEditorView* editor = ObjectCast<StyleEditorView>(editor_obj.get());
  ASSERT_NE(editor, nullptr);
  editor->SetTarget(&doc);
  auto editor_im = InteractionManager::Create(*ws_, 260, 160, "styles");
  editor_im->SetChild(editor);
  editor_im->RunOnce();
  // The list shows the standard styles.
  EXPECT_GE(editor->style_list()->items().size(), 9u);

  // Redefine "heading": grow it; the *document window* repaints because the
  // stylesheet lives on the data object.
  editor->SelectStyle("heading");
  int size_before = doc.styles().Get("heading").font.size;
  uint64_t doc_pixels_before = doc_im->window()->Display().Hash();
  editor->GrowFont(+10);
  editor_im->RunOnce();
  doc_im->RunOnce();
  EXPECT_EQ(doc.styles().Get("heading").font.size, size_before + 10);
  EXPECT_NE(doc_im->window()->Display().Hash(), doc_pixels_before);

  // Button path: click "Italic" in the editor window.
  editor->SelectStyle("default");
  Point italic_center{0, 0};
  for (View* child : editor->children()) {
    if (ButtonView* button = ObjectCast<ButtonView>(child)) {
      if (button->label() == "Italic") {
        italic_center = button->DeviceBounds().center();
      }
    }
  }
  ASSERT_NE(italic_center, (Point{0, 0}));
  editor_im->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, italic_center));
  editor_im->window()->Inject(InputEvent::MouseAt(EventType::kMouseUp, italic_center));
  editor_im->RunOnce();
  EXPECT_EQ(doc.styles().Get("default").font.style & kItalic, unsigned{kItalic});

  // Redefined styles persist through the external representation.
  ReadContext ctx;
  std::unique_ptr<DataObject> read = ReadDocument(WriteDocument(doc), &ctx);
  TextData* back = ObjectCast<TextData>(read.get());
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->styles().Get("heading").font.size, size_before + 10);
  text_view.SetText(nullptr);
}

// ---- §8 stretch goal: two window systems at once -------------------------------------

TEST_F(PackageTest, WindowsOnTwoWindowSystemsSimultaneously) {
  // "With a little more restructuring of the basic code we believe that it
  // will be possible to actually open windows on two different window
  // systems at the same time."  Here it simply works: one data object,
  // one view per window system, edits reflected in both.
  std::unique_ptr<WindowSystem> itc = WindowSystem::Open("itc");
  std::unique_ptr<WindowSystem> x11 = WindowSystem::Open("x11");
  ASSERT_NE(itc, nullptr);
  ASSERT_NE(x11, nullptr);
  TextData shared;
  TextView view_itc;
  TextView view_x11;
  view_itc.SetText(&shared);
  view_x11.SetText(&shared);
  auto im_itc = InteractionManager::Create(*itc, 200, 80, "on itc");
  auto im_x11 = InteractionManager::Create(*x11, 200, 80, "on x11");
  im_itc->SetChild(&view_itc);
  im_x11->SetChild(&view_x11);
  im_itc->SetInputFocus(&view_itc);
  for (char ch : std::string("both worlds")) {
    im_itc->window()->Inject(InputEvent::KeyPress(ch));
  }
  im_itc->RunOnce();
  im_x11->RunOnce();
  EXPECT_EQ(shared.GetAllText(), "both worlds");
  // Caret position is per-view transient state (§2), so align it before
  // comparing pixels: both backends then render identically.
  view_x11.SetDot(shared.size());
  im_itc->RunOnce();
  im_x11->RunOnce();
  EXPECT_EQ(im_itc->window()->Display().Hash(), im_x11->window()->Display().Hash());
  view_itc.SetText(nullptr);
  view_x11.SetText(nullptr);
}

// ---- The porting boundary as a checked rule --------------------------------------------

TEST(PortingBoundary, NothingAboveWmIncludesABackendHeader) {
  // §8 holds only if application/toolkit code never names a backend.  Scan
  // the source tree (repo-relative to this test file).
  std::string tests_dir = __FILE__;
  std::string repo = tests_dir.substr(0, tests_dir.rfind("/tests/"));
  const char* const kDirs[] = {"/src/base", "/src/components", "/src/apps", "/src/workload"};
  const char* const kForbidden[] = {"wm_itc.h", "wm_x11sim.h"};
  // Enumerate the files we ship (no dirent walk needed: check the compile
  // units the build lists).
  std::vector<std::string> files;
  for (const char* dir : kDirs) {
    std::ifstream cmake(repo + dir + "/CMakeLists.txt");
    if (!cmake) {
      // Component subdirectories each have their own lists.
      continue;
    }
  }
  // Simpler and complete: walk known module file lists via the CMake files
  // in every directory under src/ except src/wm.
  std::vector<std::string> roots = {repo + "/src/base",     repo + "/src/apps",
                                    repo + "/src/workload", repo + "/src/components"};
  std::vector<std::string> offenders;
  std::function<void(const std::string&)> scan_cmake = [&](const std::string& dir) {
    std::ifstream lists(dir + "/CMakeLists.txt");
    std::string line;
    while (lists && std::getline(lists, line)) {
      // Source file entries end in .cc.
      size_t cc = line.find(".cc");
      if (cc == std::string::npos) {
        continue;
      }
      std::string name = line.substr(0, cc + 3);
      name.erase(0, name.find_first_not_of(" \t"));
      std::ifstream source(dir + "/" + name);
      std::ostringstream body;
      body << source.rdbuf();
      std::string content = body.str();
      // Also check the paired header.
      std::string header_name = name.substr(0, name.size() - 3) + ".h";
      std::ifstream header(dir + "/" + header_name);
      if (header) {
        body << header.rdbuf();
        content = body.str();
      }
      for (const char* forbidden : kForbidden) {
        if (content.find(forbidden) != std::string::npos) {
          offenders.push_back(dir + "/" + name + " includes " + forbidden);
        }
      }
    }
  };
  scan_cmake(repo + "/src/base");
  scan_cmake(repo + "/src/apps");
  scan_cmake(repo + "/src/workload");
  for (const char* component : {"text", "table", "drawing", "equation", "raster",
                                "animation", "scroll", "frame", "widgets"}) {
    scan_cmake(repo + "/src/components/" + component);
  }
  EXPECT_TRUE(offenders.empty()) << offenders.front();
  (void)files;
}

}  // namespace
}  // namespace atk
