// The memory accounting spine (DESIGN.md §8): accounts and ScopedCharge
// pairing, budget/pressure plumbing, the `memsnapshot` §5 component, and
// the allocator oracle that keeps the internal totals honest.
//
// This binary replaces global operator new/delete with a live-byte counter
// (a size header in front of every allocation) so the oracle test can
// compare the accountant's exclusive totals against what the allocator
// actually handed out — no platform mallinfo needed, and it works under
// ASan too.  The counter is a pair of relaxed atomics, cheap enough to
// leave on for every test in the binary.

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/standard_modules.h"
#include "src/base/data_object.h"
#include "src/class_system/loader.h"
#include "src/components/text/text_data.h"
#include "src/observability/memory.h"
#include "src/observability/memsnapshot_component.h"
#include "src/robustness/salvage.h"
#include "src/workload/workload.h"

namespace {

std::atomic<int64_t> g_allocator_live_bytes{0};

// Size header big enough to keep malloc's max_align_t guarantee.
constexpr size_t kOracleHeader = 16;
static_assert(kOracleHeader >= sizeof(size_t));
static_assert(kOracleHeader % alignof(std::max_align_t) == 0);

void* OracleAlloc(size_t size) {
  void* raw = std::malloc(size + kOracleHeader);
  if (raw == nullptr) {
    return nullptr;
  }
  *static_cast<size_t*>(raw) = size;
  g_allocator_live_bytes.fetch_add(static_cast<int64_t>(size),
                                   std::memory_order_relaxed);
  return static_cast<char*>(raw) + kOracleHeader;
}

void OracleFree(void* ptr) {
  if (ptr == nullptr) {
    return;
  }
  void* raw = static_cast<char*>(ptr) - kOracleHeader;
  g_allocator_live_bytes.fetch_sub(static_cast<int64_t>(*static_cast<size_t*>(raw)),
                                   std::memory_order_relaxed);
  std::free(raw);
}

}  // namespace

// Over-aligned types fall through to the C++17 aligned overloads (not
// replaced here) — new and delete stay paired per overload set, so the
// counter never sees a half of an allocation.
void* operator new(std::size_t size) {
  void* ptr = OracleAlloc(size);
  if (ptr == nullptr) {
    throw std::bad_alloc();
  }
  return ptr;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return OracleAlloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return OracleAlloc(size);
}
void operator delete(void* ptr) noexcept { OracleFree(ptr); }
void operator delete[](void* ptr) noexcept { OracleFree(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { OracleFree(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { OracleFree(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept { OracleFree(ptr); }
void operator delete[](void* ptr, const std::nothrow_t&) noexcept { OracleFree(ptr); }

namespace atk {
namespace {

using observability::BudgetMonitor;
using observability::CensusRow;
using observability::MemoryAccount;
using observability::MemoryAccountant;
using observability::MemoryAccountSample;
using observability::MemorySnapshot;
using observability::ParseByteSize;
using observability::PressureEvent;
using observability::ScopedCharge;

TEST(Memory, ScopedChargePairsResizesAndMoves) {
  MemoryAccountant& accountant = MemoryAccountant::Instance();
  MemoryAccount& account = accountant.account("test.mem.pairing");
  const int64_t base = account.current();
  const int64_t total_base = accountant.total();
  {
    ScopedCharge charge(account, 1000);
    EXPECT_EQ(account.current(), base + 1000);
    EXPECT_EQ(accountant.total(), total_base + 1000);
    charge.Resize(400);
    EXPECT_EQ(account.current(), base + 400);
    charge.Add(100);
    EXPECT_EQ(charge.bytes(), 500);
    // The charge transfers on move: one release, not two.
    ScopedCharge stolen(std::move(charge));
    EXPECT_FALSE(charge.attached());
    EXPECT_TRUE(stolen.attached());
    EXPECT_EQ(account.current(), base + 500);
  }
  EXPECT_EQ(account.current(), base);
  EXPECT_EQ(accountant.total(), total_base);
  EXPECT_GE(account.peak(), base + 1000);
  // A default-constructed charge is inert everywhere.
  ScopedCharge inert;
  inert.Resize(1 << 20);
  EXPECT_EQ(accountant.total(), total_base);
}

TEST(Memory, OverlayAccountsStayOutOfProcessTotals) {
  MemoryAccountant& accountant = MemoryAccountant::Instance();
  MemoryAccount& overlay = accountant.overlay("test.mem.shadow");
  EXPECT_TRUE(overlay.overlay());
  const int64_t total_before = accountant.total();
  const int64_t overlay_before = overlay.current();
  {
    ScopedCharge charge(overlay, 4096);
    EXPECT_EQ(overlay.current(), overlay_before + 4096);
    EXPECT_EQ(accountant.total(), total_before);
  }
  EXPECT_EQ(overlay.current(), overlay_before);
  // The kind is fixed by the first lookup; both accessors return the same
  // object afterwards.
  EXPECT_EQ(&accountant.account("test.mem.shadow"), &overlay);
}

TEST(Memory, ParseByteSizeGrammar) {
  uint64_t bytes = 0;
  EXPECT_TRUE(ParseByteSize("4096", &bytes));
  EXPECT_EQ(bytes, 4096u);
  EXPECT_TRUE(ParseByteSize("64k", &bytes));
  EXPECT_EQ(bytes, 64u * 1024);
  EXPECT_TRUE(ParseByteSize("16M", &bytes));
  EXPECT_EQ(bytes, 16u * 1024 * 1024);
  EXPECT_TRUE(ParseByteSize("2g", &bytes));
  EXPECT_EQ(bytes, 2ull * 1024 * 1024 * 1024);
  EXPECT_FALSE(ParseByteSize("", &bytes));
  EXPECT_FALSE(ParseByteSize("k", &bytes));
  EXPECT_FALSE(ParseByteSize("12q", &bytes));
  EXPECT_FALSE(ParseByteSize("-3", &bytes));
  EXPECT_FALSE(ParseByteSize("1.5m", &bytes));
}

TEST(Memory, BudgetCallbacksFireAscendingAndRearm) {
  MemoryAccountant& accountant = MemoryAccountant::Instance();
  BudgetMonitor& monitor = accountant.budget_monitor();
  monitor.Clear();
  // Anchor the budget to the current total so the test is immune to pools
  // other tests left charged.
  const int64_t base = accountant.total();
  monitor.SetBudget(static_cast<uint64_t>(base) + 10000);

  std::vector<double> fired;
  monitor.AddCallback(0.8, [&](const PressureEvent& event) {
    fired.push_back(event.fraction);
    EXPECT_EQ(event.budget, static_cast<uint64_t>(base) + 10000);
    EXPECT_GE(event.total, base + 8000);
  });
  monitor.AddCallback(0.5, [&](const PressureEvent& event) {
    fired.push_back(event.fraction);
  });

  MemoryAccount& account = accountant.account("test.mem.budget");
  ScopedCharge charge(account);

  // One charge crossing both thresholds fires both, ascending.
  charge.Resize(9000);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 0.5);
  EXPECT_EQ(fired[1], 0.8);

  // Staying above fires nothing more; dipping between re-arms only 0.8.
  charge.Resize(9500);
  EXPECT_EQ(fired.size(), 2u);
  charge.Resize(6000);
  charge.Resize(9000);
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[2], 0.8);

  // Falling below everything re-arms both.
  charge.Resize(0);
  charge.Resize(9000);
  ASSERT_EQ(fired.size(), 5u);
  EXPECT_EQ(fired[3], 0.5);
  EXPECT_EQ(fired[4], 0.8);

  charge.Resize(0);
  monitor.Clear();
  EXPECT_EQ(monitor.budget(), 0u);
}

TEST(Memory, BudgetCallbackMayChargeWithoutRecursing) {
  // An evictor that releases (or even charges) from inside the pressure
  // callback must not re-enter itself on its own thread.
  MemoryAccountant& accountant = MemoryAccountant::Instance();
  BudgetMonitor& monitor = accountant.budget_monitor();
  monitor.Clear();
  const int64_t base = accountant.total();
  monitor.SetBudget(static_cast<uint64_t>(base) + 1000);

  MemoryAccount& account = accountant.account("test.mem.evictor");
  int fires = 0;
  monitor.AddCallback(1.0, [&](const PressureEvent&) {
    ++fires;
    // Nested charge crosses the threshold again; the guard suppresses it.
    account.Charge(500);
    account.Release(500);
  });
  {
    ScopedCharge charge(account, 2000);
    EXPECT_EQ(fires, 1);
  }
  monitor.Clear();
}

MemorySnapshot MakeSampleSnapshot() {
  MemorySnapshot snapshot;
  snapshot.budget_bytes = 1 << 20;
  snapshot.total_bytes = 123456;
  snapshot.peak_bytes = 234567;
  MemoryAccountSample text;
  text.name = "text.mem.gapbuffer";
  text.current_bytes = 65536;
  text.peak_bytes = 131072;
  text.charged_bytes = 999999;
  MemoryAccountSample shadow;
  shadow.name = "base.mem.dataobject";
  shadow.overlay = true;
  shadow.current_bytes = 4096;
  shadow.peak_bytes = 8192;
  shadow.charged_bytes = 55555;
  snapshot.accounts = {text, shadow};
  snapshot.census = {{"textdata", 12, 61440}, {"tabledata", 3, 9000}};
  return snapshot;
}

void ExpectSnapshotsEqual(const MemorySnapshot& back, const MemorySnapshot& original) {
  EXPECT_EQ(back.budget_bytes, original.budget_bytes);
  EXPECT_EQ(back.total_bytes, original.total_bytes);
  EXPECT_EQ(back.peak_bytes, original.peak_bytes);
  ASSERT_EQ(back.accounts.size(), original.accounts.size());
  for (size_t i = 0; i < original.accounts.size(); ++i) {
    EXPECT_EQ(back.accounts[i].name, original.accounts[i].name);
    EXPECT_EQ(back.accounts[i].overlay, original.accounts[i].overlay);
    EXPECT_EQ(back.accounts[i].current_bytes, original.accounts[i].current_bytes);
    EXPECT_EQ(back.accounts[i].peak_bytes, original.accounts[i].peak_bytes);
    EXPECT_EQ(back.accounts[i].charged_bytes, original.accounts[i].charged_bytes);
  }
  ASSERT_EQ(back.census.size(), original.census.size());
  for (size_t i = 0; i < original.census.size(); ++i) {
    EXPECT_EQ(back.census[i].name, original.census[i].name);
    EXPECT_EQ(back.census[i].count, original.census[i].count);
    EXPECT_EQ(back.census[i].bytes, original.census[i].bytes);
  }
}

TEST(Memory, MemSnapshotRoundTripsThroughDatastream) {
  MemorySnapshot original = MakeSampleSnapshot();
  std::string serialized = observability::MemSnapshotToDatastream(original);
  EXPECT_NE(serialized.find("\\begindata{memsnapshot,"), std::string::npos);
  EXPECT_NE(serialized.find("\\memmeta{"), std::string::npos);
  EXPECT_NE(serialized.find("\\account{"), std::string::npos);
  EXPECT_NE(serialized.find("\\census{"), std::string::npos);

  MemorySnapshot back;
  Status status = observability::MemSnapshotFromDatastream(serialized, &back);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ExpectSnapshotsEqual(back, original);

  // A healthy census document passes through the salvager untouched.
  SalvageReport report;
  std::string salvaged = DataStreamSalvager().Salvage(serialized, &report);
  EXPECT_TRUE(report.clean);
  EXPECT_EQ(salvaged, serialized);
}

TEST(Memory, LiveSnapshotRoundTripsWithCensus) {
  // The real accountant's snapshot (with the DataObject census hooked up)
  // survives the same round trip.  The census counts *decoded* objects, so
  // a document held alive across the snapshot guarantees at least one row.
  RegisterStandardModules();
  Loader::Instance().Require("text");
  auto source = ObjectCast<TextData>(Loader::Instance().NewObject("text"));
  ASSERT_NE(source, nullptr);
  source->SetText("census bait\n");
  std::unique_ptr<DataObject> doc = ReadDocument(WriteDocument(*source));
  ASSERT_NE(doc, nullptr);

  MemorySnapshot live = MemoryAccountant::Instance().SnapshotMemory();
  EXPECT_FALSE(live.accounts.empty());
  EXPECT_FALSE(live.census.empty());

  MemorySnapshot back;
  Status status = observability::MemSnapshotFromDatastream(
      observability::MemSnapshotToDatastream(live), &back);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ExpectSnapshotsEqual(back, live);
}

TEST(Memory, CorruptedCensusDocumentSalvages) {
  MemorySnapshot original = MakeSampleSnapshot();
  std::string serialized = observability::MemSnapshotToDatastream(original);

  // Knock the closing brace off one \census directive: damaged through the
  // end of the line.  The raw document no longer parses; the salvager
  // quarantines the damaged directive and the repaired document does,
  // losing only that row.
  size_t census = serialized.find("\\census{");
  ASSERT_NE(census, std::string::npos);
  size_t brace = serialized.find('}', census);
  ASSERT_NE(brace, std::string::npos);
  serialized.erase(brace, 1);

  MemorySnapshot direct;
  EXPECT_FALSE(observability::MemSnapshotFromDatastream(serialized, &direct).ok());

  SalvageReport report;
  std::string salvaged = DataStreamSalvager().Salvage(serialized, &report);
  EXPECT_FALSE(report.clean);
  MemorySnapshot back;
  Status status = observability::MemSnapshotFromDatastream(salvaged, &back);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(back.total_bytes, original.total_bytes);
  ASSERT_EQ(back.accounts.size(), original.accounts.size());
  EXPECT_LT(back.census.size(), original.census.size());
}

TEST(Memory, TruncatedCensusDocumentSalvages) {
  MemorySnapshot original = MakeSampleSnapshot();
  std::string serialized = observability::MemSnapshotToDatastream(original);

  // Cut the document mid-census (no \enddata).  Direct parse reports
  // Truncated; the salvager closes the open marker.
  size_t census = serialized.rfind("\\census{");
  ASSERT_NE(census, std::string::npos);
  serialized.resize(census);

  MemorySnapshot direct;
  EXPECT_EQ(observability::MemSnapshotFromDatastream(serialized, &direct).code(),
            StatusCode::kTruncated);

  SalvageReport report;
  std::string salvaged = DataStreamSalvager().Salvage(serialized, &report);
  EXPECT_FALSE(report.clean);
  EXPECT_GT(report.markers_closed, 0);
  MemorySnapshot back;
  Status status = observability::MemSnapshotFromDatastream(salvaged, &back);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(back.accounts.size(), original.accounts.size());
  EXPECT_EQ(back.census.size(), original.census.size() - 1);
}

TEST(Memory, AccountantAgreesWithAllocatorOracle) {
  // The acceptance oracle: decode the 256-paragraph corpus and compare the
  // accountant's exclusive-total growth against the allocator's live-byte
  // growth over the same window.  The corpus is text-dominant, so nearly
  // every live byte is gap-buffer backing storage the accountant charges;
  // std::string/map bookkeeping the accountant deliberately ignores is the
  // tolerated remainder (10%).
  RegisterStandardModules();
  Loader::Instance().Require("text");
  MemoryAccountant& accountant = MemoryAccountant::Instance();
  WorkloadRng rng(1988);
  std::string serialized;
  {
    std::unique_ptr<TextData> generated = GenerateDocument(rng, 256, 80);
    ASSERT_NE(generated, nullptr);
    serialized = WriteDocument(*generated);
  }
  // Warm decode: faults in lazy statics (metrics, class registrations,
  // thread-local scratch) so the measured window sees only document bytes.
  { std::unique_ptr<DataObject> warm = ReadDocument(serialized); }

  const int64_t oracle_before = g_allocator_live_bytes.load(std::memory_order_relaxed);
  const int64_t accountant_before = accountant.total();
  std::unique_ptr<DataObject> decoded = ReadDocument(serialized);
  ASSERT_NE(decoded, nullptr);
  const int64_t oracle_delta =
      g_allocator_live_bytes.load(std::memory_order_relaxed) - oracle_before;
  const int64_t accountant_delta = accountant.total() - accountant_before;

  ASSERT_GT(oracle_delta, 0);
  ASSERT_GT(accountant_delta, 0);
  const double ratio =
      static_cast<double>(accountant_delta) / static_cast<double>(oracle_delta);
  EXPECT_GE(ratio, 0.9) << "accountant " << accountant_delta << " vs oracle "
                        << oracle_delta;
  EXPECT_LE(ratio, 1.1) << "accountant " << accountant_delta << " vs oracle "
                        << oracle_delta;

  // And the pairing holds: dropping the document returns the accountant to
  // its pre-decode level exactly.
  decoded.reset();
  EXPECT_EQ(accountant.total(), accountant_before);
}

TEST(Memory, ConcurrentChargeReleaseProber) {
  // TSan bait: four charging threads against one account while a prober
  // thread snapshots, runs the census, and renders text.  The invariant is
  // only checked after the join — during the run the point is the absence
  // of data races, not any particular interleaving.
  MemoryAccountant& accountant = MemoryAccountant::Instance();
  MemoryAccount& account = accountant.account("test.mem.prober");
  const int64_t base = account.current();

  std::atomic<bool> stop{false};
  std::thread prober([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      MemorySnapshot snapshot = accountant.SnapshotMemory(4);
      std::string text = observability::MemoryToText(snapshot);
      ASSERT_FALSE(text.empty());
    }
  });

  std::vector<std::thread> chargers;
  for (int t = 0; t < 4; ++t) {
    chargers.emplace_back([&account] {
      for (int i = 0; i < 20000; ++i) {
        ScopedCharge charge(account, 64 + (i & 1023));
        charge.Resize(32);
      }
    });
  }
  for (std::thread& thread : chargers) {
    thread.join();
  }
  stop.store(true, std::memory_order_relaxed);
  prober.join();

  EXPECT_EQ(account.current(), base);
  EXPECT_GE(account.peak(), base + 64);
}

}  // namespace
}  // namespace atk
