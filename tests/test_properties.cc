// Property-based suites (parameterized over seeds/backends):
//  * datastream round trips of arbitrary generated compound documents;
//  * Region algebra laws checked against a brute-force pixel-set model;
//  * text editing checked against a reference string + interval model;
//  * spreadsheet recalculation vs direct evaluation;
//  * every scenario parameterized over both window systems.

#include <gtest/gtest.h>

#include <set>

#include "src/apps/standard_modules.h"
#include "src/base/interaction_manager.h"
#include "src/class_system/loader.h"
#include "src/components/table/table_data.h"
#include "src/components/text/text_view.h"
#include "src/graphics/region.h"
#include "src/wm/window_system.h"
#include "src/workload/workload.h"

namespace atk {
namespace {

void LoadAllModules() {
  static bool done = [] {
    RegisterStandardModules();
    for (const char* module :
         {"text", "table", "drawing", "equation", "raster", "animation"}) {
      Loader::Instance().Require(module);
    }
    return true;
  }();
  (void)done;
}

// ---- Datastream round trips over generated documents ------------------------

class RoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripProperty, CompoundDocumentSurvivesTwoTrips) {
  LoadAllModules();
  WorkloadRng rng(static_cast<uint64_t>(GetParam()));
  CompoundDocumentSpec spec;
  spec.paragraphs = rng.IntIn(1, 6);
  spec.tables = rng.IntIn(0, 2);
  spec.drawings = rng.IntIn(0, 2);
  spec.equations = rng.IntIn(0, 2);
  spec.rasters = rng.IntIn(0, 1);
  spec.animations = rng.IntIn(0, 1);
  spec.nesting_depth = rng.IntIn(1, 3);
  std::unique_ptr<TextData> doc = GenerateCompoundDocument(rng, spec);

  std::string once = WriteDocument(*doc);
  ReadContext ctx1;
  std::unique_ptr<DataObject> read1 = ReadDocument(once, &ctx1);
  ASSERT_NE(read1, nullptr);
  EXPECT_TRUE(ctx1.ok()) << (ctx1.errors().empty() ? "" : ctx1.errors()[0]);
  std::string twice = WriteDocument(*read1);
  // Serialization is a fixed point after one trip.
  EXPECT_EQ(once, twice);
  TextData* round = ObjectCast<TextData>(read1.get());
  ASSERT_NE(round, nullptr);
  EXPECT_EQ(round->GetAllText(), doc->GetAllText());
  EXPECT_EQ(round->embedded_count(), doc->embedded_count());
  // Mailability (§5): everything the toolkit writes is 7-bit printable.
  for (char ch : once) {
    unsigned char byte = static_cast<unsigned char>(ch);
    ASSERT_LT(byte, 0x80u);
    ASSERT_TRUE(byte >= 0x20 || ch == '\n' || ch == '\t');
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty, ::testing::Range(1, 21));

// ---- Region algebra vs a brute-force set model --------------------------------

class RegionProperty : public ::testing::TestWithParam<int> {};

TEST_P(RegionProperty, MatchesPixelSetModel) {
  WorkloadRng rng(static_cast<uint64_t>(GetParam() * 7919));
  Region region;
  std::set<std::pair<int, int>> model;
  constexpr int kWorld = 48;
  for (int step = 0; step < 40; ++step) {
    Rect r{rng.IntIn(0, kWorld - 8), rng.IntIn(0, kWorld - 8), rng.IntIn(1, 12),
           rng.IntIn(1, 12)};
    bool add = rng.Chance(0.7);
    if (add) {
      region.Add(r);
      for (int y = r.top(); y < r.bottom(); ++y) {
        for (int x = r.left(); x < r.right(); ++x) {
          model.insert({x, y});
        }
      }
    } else {
      region.Subtract(r);
      for (int y = r.top(); y < r.bottom(); ++y) {
        for (int x = r.left(); x < r.right(); ++x) {
          model.erase({x, y});
        }
      }
    }
    // Invariants, every step.
    ASSERT_EQ(region.Area(), static_cast<int64_t>(model.size()));
    // Disjointness: total area equals sum of rect areas.
    int64_t sum = 0;
    for (const Rect& piece : region.rects()) {
      ASSERT_FALSE(piece.IsEmpty());
      sum += piece.Area();
    }
    ASSERT_EQ(sum, region.Area());
  }
  // Point membership agrees everywhere.
  for (int y = 0; y < kWorld; ++y) {
    for (int x = 0; x < kWorld; ++x) {
      ASSERT_EQ(region.Contains(Point{x, y}), model.count({x, y}) > 0)
          << "at " << x << "," << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionProperty, ::testing::Range(1, 11));

// ---- Text editing vs a reference model -------------------------------------------

class TextEditProperty : public ::testing::TestWithParam<int> {};

TEST_P(TextEditProperty, DataMatchesReferenceStringAndStylesStayInBounds) {
  LoadAllModules();
  WorkloadRng rng(static_cast<uint64_t>(GetParam() * 131));
  TextData text;
  std::string model;
  for (int step = 0; step < 400; ++step) {
    if (model.empty() || rng.Chance(0.65)) {
      size_t pos = model.empty() ? 0 : rng.Below(model.size() + 1);
      std::string chunk;
      int len = rng.IntIn(1, 8);
      for (int i = 0; i < len; ++i) {
        chunk += static_cast<char>(rng.Chance(0.1) ? '\n' : 'a' + rng.Below(26));
      }
      text.InsertString(static_cast<int64_t>(pos), chunk);
      model.insert(pos, chunk);
    } else if (rng.Chance(0.5)) {
      size_t pos = rng.Below(model.size());
      size_t len = 1 + rng.Below(6);
      len = std::min(len, model.size() - pos);
      text.DeleteRange(static_cast<int64_t>(pos), static_cast<int64_t>(len));
      model.erase(pos, len);
    } else if (model.size() > 4) {
      int64_t pos = static_cast<int64_t>(rng.Below(model.size() - 2));
      text.ApplyStyle(pos, rng.IntIn(1, 10), rng.Chance(0.5) ? "bold" : "italic");
    }
    ASSERT_EQ(text.size(), static_cast<int64_t>(model.size()));
    // Style runs must stay sorted, disjoint, and inside the document.
    int64_t prev_end = 0;
    for (const TextData::StyleRun& run : text.style_runs()) {
      ASSERT_GE(run.pos, prev_end);
      ASSERT_GT(run.len, 0);
      ASSERT_LE(run.pos + run.len, text.size());
      prev_end = run.pos + run.len;
    }
    // Line bookkeeping agrees with the model.
    ASSERT_EQ(text.LineCount(),
              static_cast<int64_t>(std::count(model.begin(), model.end(), '\n')) + 1);
  }
  EXPECT_EQ(text.GetAllText(), model);
  // And the battered document still round-trips.
  ReadContext ctx;
  std::unique_ptr<DataObject> read = ReadDocument(WriteDocument(text), &ctx);
  TextData* round = ObjectCast<TextData>(read.get());
  ASSERT_NE(round, nullptr);
  EXPECT_EQ(round->GetAllText(), model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextEditProperty, ::testing::Range(1, 11));

// ---- Spreadsheet recalculation vs direct evaluation --------------------------------

class RecalcProperty : public ::testing::TestWithParam<int> {};

TEST_P(RecalcProperty, RunningTotalsMatchDirectSums) {
  LoadAllModules();
  WorkloadRng rng(static_cast<uint64_t>(GetParam() * 31));
  std::unique_ptr<TableData> sheet = GenerateSpreadsheet(rng, 12, 6, 0.35);
  // Every formula cell is SUM over rows 1..r-1 of its column: check directly.
  for (int r = 2; r < sheet->rows(); ++r) {
    for (int c = 1; c < sheet->cols(); ++c) {
      if (sheet->at(r, c).kind != TableData::CellKind::kFormula) {
        continue;
      }
      ASSERT_FALSE(sheet->at(r, c).error)
          << r << "," << c << ": " << sheet->at(r, c).error_message;
      double expected = 0;
      for (int rr = 1; rr < r; ++rr) {
        expected += sheet->Value(rr, c);
      }
      ASSERT_DOUBLE_EQ(sheet->Value(r, c), expected) << "cell " << r << "," << c;
    }
  }
  // Mutate a base cell and re-check one dependent column.
  sheet->SetNumber(1, 1, 10000);
  for (int r = 2; r < sheet->rows(); ++r) {
    if (sheet->at(r, 1).kind == TableData::CellKind::kFormula) {
      double expected = 0;
      for (int rr = 1; rr < r; ++rr) {
        expected += sheet->Value(rr, 1);
      }
      ASSERT_DOUBLE_EQ(sheet->Value(r, 1), expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecalcProperty, ::testing::Range(1, 11));

// ---- The same UI scenario on both window systems -----------------------------------

class BackendProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(BackendProperty, EditorScenarioRendersIdenticallyOnEveryBackend) {
  LoadAllModules();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open(GetParam());
  ASSERT_NE(ws, nullptr);
  TextData text;
  TextView view;
  view.SetText(&text);
  auto im = InteractionManager::Create(*ws, 240, 100, "prop");
  im->SetChild(&view);
  im->SetInputFocus(&view);
  for (char ch : std::string("backend independent")) {
    im->window()->Inject(InputEvent::KeyPress(ch));
  }
  im->RunOnce();
  EXPECT_EQ(text.GetAllText(), "backend independent");
  // The rendered hash is identical across backends; record it against a
  // shared slot the first backend fills in.
  static uint64_t reference_hash = 0;
  uint64_t hash = im->window()->Display().Hash();
  if (reference_hash == 0) {
    reference_hash = hash;
  }
  EXPECT_EQ(hash, reference_hash);
  view.SetText(nullptr);
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendProperty, ::testing::Values("itc", "x11"));

// ---- Datastream reader fuzzing -------------------------------------------------------

class ReaderFuzzProperty : public ::testing::TestWithParam<int> {};

TEST_P(ReaderFuzzProperty, GarbageInputTerminatesAndNeverCrashes) {
  LoadAllModules();
  WorkloadRng rng(static_cast<uint64_t>(GetParam() * 48271));
  // Random soup of text, escapes, marker fragments and real markers.
  std::string soup;
  const char* const kFragments[] = {
      "\\begindata{text,",  "\\enddata{text,1}",  "\\view{spread,",   "\\x{4",
      "\\begindata{,}",     "\\\\",               "\\begindata{a,1}", "\\textstyle{b,",
      "}",                  "{",                  "\\enddata{",       "\\x{zz}",
  };
  int pieces = rng.IntIn(20, 120);
  for (int i = 0; i < pieces; ++i) {
    if (rng.Chance(0.4)) {
      soup += kFragments[rng.Below(12)];
    } else {
      int len = rng.IntIn(1, 12);
      for (int j = 0; j < len; ++j) {
        soup += static_cast<char>(0x20 + rng.Below(95));
      }
      if (rng.Chance(0.3)) {
        soup += '\n';
      }
    }
  }
  // Token stream must terminate (bounded by input size) without crashing.
  DataStreamReader reader(soup);
  int tokens = 0;
  while (reader.Next().kind != DataStreamReader::Token::Kind::kEof) {
    ++tokens;
    ASSERT_LT(tokens, static_cast<int>(soup.size()) + 16) << "reader failed to terminate";
  }
  // And the whole-document path must come back (possibly null) cleanly.
  ReadContext ctx;
  std::unique_ptr<DataObject> read = ReadDocument(soup, &ctx);
  if (read != nullptr) {
    // Whatever was salvaged must be serializable again without crashing.
    std::string rewritten = WriteDocument(*read);
    ASSERT_FALSE(rewritten.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReaderFuzzProperty, ::testing::Range(1, 31));

// ---- Event-trace crash safety across components --------------------------------------

class TraceProperty : public ::testing::TestWithParam<int> {};

TEST_P(TraceProperty, RandomTracesNeverCorruptTheDocument) {
  LoadAllModules();
  WorkloadRng rng(static_cast<uint64_t>(GetParam() * 2027));
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  CompoundDocumentSpec spec;
  spec.rasters = 1;
  spec.animations = 1;
  std::unique_ptr<TextData> doc = GenerateCompoundDocument(rng, spec);
  TextView view;
  view.SetText(doc.get());
  auto im = InteractionManager::Create(*ws, 400, 300, "trace");
  im->SetChild(&view);
  im->RunOnce();
  for (const InputEvent& event : GenerateEventTrace(rng, 300, 400, 300)) {
    im->ProcessEvent(event);
    if (rng.Chance(0.05)) {
      im->RunOnce();
    }
  }
  im->RunOnce();
  ReadContext ctx;
  std::unique_ptr<DataObject> reread = ReadDocument(WriteDocument(*doc), &ctx);
  EXPECT_NE(reread, nullptr);
  EXPECT_TRUE(ctx.ok());
  view.SetText(nullptr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace atk
