// Unit tests for the Andrew Class System runtime: ClassInfo lineage, the
// registry, named construction, the observer protocol and the simulated
// dynamic loader.

#include <gtest/gtest.h>

#include "src/class_system/class_info.h"
#include "src/class_system/loader.h"
#include "src/class_system/object.h"
#include "src/class_system/observable.h"

namespace atk {
namespace {

class Animal : public Object {
  ATK_DECLARE_CLASS(Animal)
 public:
  virtual std::string Noise() const { return "..."; }
};
ATK_DEFINE_CLASS(Animal, Object, "animal")

class Dog : public Animal {
  ATK_DECLARE_CLASS(Dog)
 public:
  std::string Noise() const override { return "woof"; }
};
ATK_DEFINE_CLASS(Dog, Animal, "dog")

class Cat : public Animal {
  ATK_DECLARE_CLASS(Cat)
};
ATK_DEFINE_CLASS(Cat, Animal, "cat")

TEST(ClassInfo, LineageNamesAndDepth) {
  EXPECT_EQ(Dog::StaticClassInfo().name(), "dog");
  EXPECT_EQ(Dog::StaticClassInfo().parent(), &Animal::StaticClassInfo());
  EXPECT_EQ(Object::StaticClassInfo().parent(), nullptr);
  EXPECT_EQ(Object::StaticClassInfo().InheritanceDepth(), 0);
  EXPECT_EQ(Dog::StaticClassInfo().InheritanceDepth(), 2);
}

TEST(ClassInfo, DerivesFrom) {
  EXPECT_TRUE(Dog::StaticClassInfo().DerivesFrom(Animal::StaticClassInfo()));
  EXPECT_TRUE(Dog::StaticClassInfo().DerivesFrom(Object::StaticClassInfo()));
  EXPECT_FALSE(Animal::StaticClassInfo().DerivesFrom(Dog::StaticClassInfo()));
  EXPECT_FALSE(Dog::StaticClassInfo().DerivesFrom(Cat::StaticClassInfo()));
}

TEST(Object, IsAByInfoAndByName) {
  Dog dog;
  EXPECT_TRUE(dog.IsA(Animal::StaticClassInfo()));
  EXPECT_TRUE(dog.IsA("animal"));
  EXPECT_TRUE(dog.IsA("object"));
  EXPECT_FALSE(dog.IsA("cat"));
  EXPECT_EQ(dog.class_name(), "dog");
}

TEST(Object, ObjectCastChecksLineage) {
  Dog dog;
  Object* obj = &dog;
  EXPECT_EQ(ObjectCast<Dog>(obj), &dog);
  EXPECT_EQ(ObjectCast<Animal>(obj), &dog);
  EXPECT_EQ(ObjectCast<Cat>(obj), nullptr);
}

TEST(Object, OwningObjectCastDestroysOnMismatch) {
  std::unique_ptr<Object> obj = std::make_unique<Dog>();
  std::unique_ptr<Cat> cat = ObjectCast<Cat>(std::move(obj));
  EXPECT_EQ(cat, nullptr);
  obj = std::make_unique<Dog>();
  std::unique_ptr<Animal> animal = ObjectCast<Animal>(std::move(obj));
  ASSERT_NE(animal, nullptr);
  EXPECT_EQ(animal->Noise(), "woof");
}

TEST(ClassRegistry, RegisterFindNew) {
  ClassRegistry& registry = ClassRegistry::Instance();
  EXPECT_TRUE(registry.Register(Dog::StaticClassInfo()));
  // Re-registering the same info is a no-op success.
  EXPECT_TRUE(registry.Register(Dog::StaticClassInfo()));
  ASSERT_NE(registry.Find("dog"), nullptr);
  std::unique_ptr<Object> obj = registry.New("dog");
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->class_name(), "dog");
  registry.Unregister("dog");
  EXPECT_EQ(registry.Find("dog"), nullptr);
}

TEST(ClassRegistry, AbstractClassHasNoFactory) {
  EXPECT_TRUE(Object::StaticClassInfo().is_abstract());
  EXPECT_EQ(Object::StaticClassInfo().NewInstance(), nullptr);
  EXPECT_FALSE(Dog::StaticClassInfo().is_abstract());
}

// ---- Observable ------------------------------------------------------------

class RecordingObserver : public Observer {
 public:
  void ObservedChanged(Observable* changed, const Change& change) override {
    ++count;
    last = change;
    last_source = changed;
    if (remove_self_from != nullptr) {
      remove_self_from->RemoveObserver(this);
    }
  }
  int count = 0;
  Change last;
  Observable* last_source = nullptr;
  Observable* remove_self_from = nullptr;
};

TEST(Observable, NotifyReachesAllObservers) {
  Observable subject;
  RecordingObserver a;
  RecordingObserver b;
  subject.AddObserver(&a);
  subject.AddObserver(&b);
  Change change;
  change.kind = Change::Kind::kInserted;
  change.pos = 7;
  change.added = 3;
  subject.NotifyObservers(change);
  EXPECT_EQ(a.count, 1);
  EXPECT_EQ(b.count, 1);
  EXPECT_EQ(a.last.kind, Change::Kind::kInserted);
  EXPECT_EQ(a.last.pos, 7);
  EXPECT_EQ(a.last_source, &subject);
}

TEST(Observable, DuplicateAddIsIgnored) {
  Observable subject;
  RecordingObserver a;
  subject.AddObserver(&a);
  subject.AddObserver(&a);
  EXPECT_EQ(subject.observer_count(), 1u);
  subject.NotifyObservers(Change{});
  EXPECT_EQ(a.count, 1);
}

TEST(Observable, ObserverMayRemoveItselfDuringNotify) {
  Observable subject;
  RecordingObserver a;
  RecordingObserver b;
  a.remove_self_from = &subject;
  subject.AddObserver(&a);
  subject.AddObserver(&b);
  subject.NotifyObservers(Change{});
  EXPECT_EQ(a.count, 1);
  EXPECT_EQ(b.count, 1);
  subject.NotifyObservers(Change{});
  EXPECT_EQ(a.count, 1);  // a detached itself.
  EXPECT_EQ(b.count, 2);
}

TEST(Observable, DestructionNotifiesWithDestroyedKind) {
  RecordingObserver a;
  {
    Observable subject;
    subject.AddObserver(&a);
  }
  EXPECT_EQ(a.count, 1);
  EXPECT_EQ(a.last.kind, Change::Kind::kDestroyed);
}

TEST(Observable, ObserverDyingFirstDetachesItself) {
  // Regression (caught by UBSan): an observer destroyed before the
  // observable must leave no dangling pointer behind.
  Observable subject;
  {
    RecordingObserver short_lived;
    subject.AddObserver(&short_lived);
    EXPECT_EQ(subject.observer_count(), 1u);
  }
  EXPECT_EQ(subject.observer_count(), 0u);
  subject.NotifyObservers(Change{});  // Must not touch freed memory.
}

TEST(Observable, ObserverWatchingTwoObservablesDetachesFromBoth) {
  Observable first;
  auto second = std::make_unique<Observable>();
  {
    RecordingObserver watcher;
    first.AddObserver(&watcher);
    second->AddObserver(&watcher);
    // One observable dies while watched: the survivor link stays valid.
    second.reset();
    EXPECT_EQ(watcher.count, 1);  // kDestroyed from `second`.
    first.NotifyObservers(Change{});
    EXPECT_EQ(watcher.count, 2);
  }
  EXPECT_EQ(first.observer_count(), 0u);
}

TEST(Observable, ModificationTimeAdvances) {
  Observable subject;
  EXPECT_EQ(subject.modification_time(), 0u);
  subject.Touch();
  EXPECT_EQ(subject.modification_time(), 1u);
  subject.NotifyObservers(Change{});
  EXPECT_EQ(subject.modification_time(), 2u);
}

// ---- Loader -----------------------------------------------------------------

class LoaderTest : public ::testing::Test {
 protected:
  void SetUp() override { Loader::Instance().UnloadAllForTest(); }
  void TearDown() override { Loader::Instance().UnloadAllForTest(); }

  // Declares a module registering Dog under a unique class name.
  static int init_runs;
};
int LoaderTest::init_runs = 0;

TEST_F(LoaderTest, RequireRunsInitOnceAndLogs) {
  Loader& loader = Loader::Instance();
  static bool declared = [] {
    ModuleSpec spec;
    spec.name = "test-dogmod";
    spec.provides = {"testdog"};
    spec.text_bytes = 10000;
    spec.init = [] { ++init_runs; };
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  ASSERT_TRUE(declared);
  int before = init_runs;
  loader.ClearLoadLog();
  EXPECT_FALSE(loader.IsLoaded("test-dogmod"));
  EXPECT_TRUE(loader.Require("test-dogmod"));
  EXPECT_TRUE(loader.IsLoaded("test-dogmod"));
  EXPECT_EQ(init_runs, before + 1);
  // Idempotent.
  EXPECT_TRUE(loader.Require("test-dogmod"));
  EXPECT_EQ(init_runs, before + 1);
  ASSERT_EQ(loader.load_log().size(), 1u);
  EXPECT_EQ(loader.load_log()[0].module, "test-dogmod");
  EXPECT_GT(loader.load_log()[0].simulated_cost_us, 0u);
}

TEST_F(LoaderTest, RequireUndeclaredFails) {
  EXPECT_FALSE(Loader::Instance().Require("no-such-module"));
}

TEST_F(LoaderTest, DependenciesLoadFirst) {
  Loader& loader = Loader::Instance();
  static bool declared = [] {
    ModuleSpec base;
    base.name = "test-dep-base";
    Loader::Instance().DeclareModule(std::move(base));
    ModuleSpec mid;
    mid.name = "test-dep-mid";
    mid.depends_on = {"test-dep-base"};
    Loader::Instance().DeclareModule(std::move(mid));
    ModuleSpec top;
    top.name = "test-dep-top";
    top.depends_on = {"test-dep-mid"};
    return Loader::Instance().DeclareModule(std::move(top));
  }();
  ASSERT_TRUE(declared);
  loader.ClearLoadLog();
  EXPECT_TRUE(loader.Require("test-dep-top"));
  ASSERT_EQ(loader.load_log().size(), 3u);
  EXPECT_EQ(loader.load_log()[0].module, "test-dep-base");
  EXPECT_EQ(loader.load_log()[1].module, "test-dep-mid");
  EXPECT_EQ(loader.load_log()[2].module, "test-dep-top");
  EXPECT_TRUE(loader.load_log()[0].as_dependency);
  EXPECT_FALSE(loader.load_log()[2].as_dependency);
  // Cannot unload a module something depends on.
  EXPECT_FALSE(loader.Unload("test-dep-base"));
  EXPECT_TRUE(loader.Unload("test-dep-top"));
  EXPECT_TRUE(loader.Unload("test-dep-mid"));
  EXPECT_TRUE(loader.Unload("test-dep-base"));
}

TEST_F(LoaderTest, DependencyCycleFailsCleanly) {
  Loader& loader = Loader::Instance();
  static bool declared = [] {
    ModuleSpec a;
    a.name = "test-cyc-a";
    a.depends_on = {"test-cyc-b"};
    Loader::Instance().DeclareModule(std::move(a));
    ModuleSpec b;
    b.name = "test-cyc-b";
    b.depends_on = {"test-cyc-a"};
    return Loader::Instance().DeclareModule(std::move(b));
  }();
  ASSERT_TRUE(declared);
  EXPECT_FALSE(loader.Require("test-cyc-a"));
  EXPECT_FALSE(loader.IsLoaded("test-cyc-b"));
}

TEST_F(LoaderTest, EnsureClassLoadsProvidingModule) {
  Loader& loader = Loader::Instance();
  static bool declared = [] {
    ModuleSpec spec;
    spec.name = "test-catmod";
    spec.provides = {"loadercat"};
    spec.init = [] {
      static const ClassInfo* info = new ClassInfo(
          "loadercat", &Object::StaticClassInfo(),
          []() -> std::unique_ptr<Object> { return std::make_unique<Cat>(); });
      ClassRegistry::Instance().Register(*info);
    };
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  ASSERT_TRUE(declared);
  EXPECT_EQ(ClassRegistry::Instance().Find("loadercat"), nullptr);
  EXPECT_EQ(loader.ProvidingModule("loadercat"), "test-catmod");
  const ClassInfo* info = loader.EnsureClass("loadercat");
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(loader.IsLoaded("test-catmod"));
  std::unique_ptr<Object> obj = loader.NewObject("loadercat");
  ASSERT_NE(obj, nullptr);
  // Unload removes the class again (default fini unregisters `provides`).
  EXPECT_TRUE(loader.Unload("test-catmod"));
  EXPECT_EQ(ClassRegistry::Instance().Find("loadercat"), nullptr);
}

TEST_F(LoaderTest, FootprintAccounting) {
  Loader& loader = Loader::Instance();
  static bool declared = [] {
    ModuleSpec spec;
    spec.name = "test-bigmod";
    spec.text_bytes = 123456;
    spec.data_bytes = 7890;
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  ASSERT_TRUE(declared);
  size_t text_before = loader.LoadedTextBytes();
  ASSERT_TRUE(loader.Require("test-bigmod"));
  EXPECT_EQ(loader.LoadedTextBytes(), text_before + 123456);
  ASSERT_TRUE(loader.Unload("test-bigmod"));
  EXPECT_EQ(loader.LoadedTextBytes(), text_before);
}

TEST_F(LoaderTest, CostModelScalesWithTextSize) {
  Loader& loader = Loader::Instance();
  Loader::CostModel model;
  model.fixed_us = 100;
  model.bytes_per_us = 1000;
  loader.set_cost_model(model);
  static bool declared = [] {
    ModuleSpec spec;
    spec.name = "test-costmod";
    spec.text_bytes = 50000;
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  ASSERT_TRUE(declared);
  loader.ClearLoadLog();
  ASSERT_TRUE(loader.Require("test-costmod"));
  ASSERT_EQ(loader.load_log().size(), 1u);
  EXPECT_EQ(loader.load_log()[0].simulated_cost_us, 100u + 50000u / 1000u);
  loader.set_cost_model(Loader::CostModel{});
}

}  // namespace
}  // namespace atk
