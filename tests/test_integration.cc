// Cross-module integration tests, each tied to a paper artifact:
//  * F1: the exact view tree from §3's figure, with event routing;
//  * F5: the Pascal's Triangle compound document (snapshot 5), rendered and
//    round-tripped;
//  * §2: one data object shown by two views in two windows;
//  * §8: the same application on both window systems, pixel-identical;
//  * §6/§7: demand loading while reading a document;
//  * §4: printing by repointing the drawable.

#include <gtest/gtest.h>

#include "src/apps/ez_app.h"
#include "src/apps/standard_modules.h"
#include "src/base/print.h"
#include "src/class_system/loader.h"
#include "src/components/animation/anim_view.h"
#include "src/components/frame/frame_view.h"
#include "src/components/scroll/scrollbar_view.h"
#include "src/components/table/table_view.h"
#include "src/components/text/paged_text_view.h"
#include "src/components/text/text_view.h"
#include "src/wm/wm_x11sim.h"
#include "src/workload/workload.h"

namespace atk {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterStandardModules();
    Loader& loader = Loader::Instance();
    for (const char* module :
         {"text", "table", "drawing", "equation", "raster", "animation", "scroll", "frame",
          "widgets"}) {
      ASSERT_TRUE(loader.Require(module)) << module;
    }
    ws_ = WindowSystem::Open("itc");
  }
  std::unique_ptr<WindowSystem> ws_;
};

// ---- F1: the §3 view-tree figure ---------------------------------------------------

// Window -> IM -> Frame -> {ScrollBar -> Text (-> Table)}, + MessageLine.
struct Figure1 {
  TextData letter;
  TableData* table = nullptr;  // Owned by the letter.
  FrameView frame;
  ScrollBarView scrollbar;
  TextView text_view;

  void Build() {
    letter.InsertString(0, "February 11, 1988\n\nDear David,\n");
    letter.InsertString(letter.size(), "Enclosed is a list of our expenses ");
    auto owned_table = std::make_unique<TableData>();
    owned_table->Resize(3, 2);
    owned_table->SetText(0, 0, "David");
    owned_table->SetNumber(1, 1, 120);
    table = owned_table.get();
    letter.InsertObject(letter.size(), std::move(owned_table), "spread");
    letter.InsertString(letter.size(), "\nHope you have a nice...\n");
    text_view.SetText(&letter);
    scrollbar.SetBody(&text_view);
    frame.SetBody(&scrollbar);
  }
};

TEST_F(IntegrationTest, Figure1TreeShapeMatchesThePaper) {
  Figure1 fig;
  fig.Build();
  auto im = InteractionManager::Create(*ws_, 420, 260, "figure 1");
  im->SetChild(&fig.frame);
  im->RunOnce();
  // IM has one child of arbitrary type (§3): the frame.
  ASSERT_EQ(im->children().size(), 1u);
  EXPECT_TRUE(im->children()[0]->IsA("frame"));
  // The frame holds the message line and the scroll bar.
  EXPECT_EQ(fig.frame.children().size(), 2u);
  // The scroll bar wraps the text view; the text view hosts the table view.
  ASSERT_EQ(fig.scrollbar.children().size(), 1u);
  EXPECT_TRUE(fig.scrollbar.children()[0]->IsA("textview"));
  ASSERT_EQ(fig.text_view.children().size(), 1u);
  EXPECT_TRUE(fig.text_view.children()[0]->IsA("tableview"));
  // Every view's rectangle is inside its parent's.
  std::function<void(View*)> check = [&](View* view) {
    for (View* child : view->children()) {
      if (child->HasGraphic() && view->HasGraphic()) {
        EXPECT_TRUE(view->DeviceBounds().Contains(child->DeviceBounds()))
            << view->class_name() << " does not contain " << child->class_name();
      }
      check(child);
    }
  };
  check(im.get());
}

TEST_F(IntegrationTest, Figure1MouseRoutingPerOverlap) {
  Figure1 fig;
  fig.Build();
  auto im = InteractionManager::Create(*ws_, 420, 260, "figure 1");
  im->SetChild(&fig.frame);
  im->RunOnce();
  // A click in the table (deep in the tree) selects a table cell.
  View* table_view = fig.text_view.children()[0];
  Rect table_device = table_view->DeviceBounds();
  Point in_table = table_device.center();
  im->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, in_table));
  im->window()->Inject(InputEvent::MouseAt(EventType::kMouseUp, in_table));
  im->RunOnce();
  EXPECT_EQ(im->input_focus(), table_view);
  // A click in plain text selects a caret in the letter.
  Point in_text = fig.text_view.DeviceBounds().origin() + Point{30, 8};
  im->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, in_text));
  im->window()->Inject(InputEvent::MouseAt(EventType::kMouseUp, in_text));
  im->RunOnce();
  EXPECT_EQ(im->input_focus(), &fig.text_view);
  // A click near the frame's divider is taken by the frame despite being
  // inside a child's rectangle (the §3 overlap).
  Point near_divider{200, fig.frame.divider() + FrameView::kGrabSlop - 1};
  im->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, near_divider));
  im->window()->Inject(InputEvent::MouseAt(EventType::kMouseUp, near_divider));
  im->RunOnce();
  EXPECT_EQ(im->input_focus(), &fig.text_view);  // Focus unchanged...
  // ...and the divider cursor shows over the grab zone (frame overrides the
  // children's cursors there), reverting to the I-beam over plain text.
  im->window()->Inject(InputEvent::MouseAt(EventType::kMouseMove, near_divider));
  im->RunOnce();
  EXPECT_EQ(im->current_cursor(), CursorShape::kHorizontalBars);
  im->window()->Inject(InputEvent::MouseAt(
      EventType::kMouseMove, fig.text_view.DeviceBounds().origin() + Point{30, 8}));
  im->RunOnce();
  EXPECT_EQ(im->current_cursor(), CursorShape::kIBeam);
}

TEST_F(IntegrationTest, Figure1RendersAllParts) {
  Figure1 fig;
  fig.Build();
  fig.frame.SetMessage("message line");
  auto im = InteractionManager::Create(*ws_, 420, 260, "figure 1");
  im->SetChild(&fig.frame);
  im->RunOnce();
  const PixelImage& display = im->window()->Display();
  // Scroll bar strip on the left below the divider (x=1 avoids the
  // elevator's border).
  EXPECT_EQ(display.GetPixel(1, fig.frame.divider() + 20), kLightGray);
  // Some text ink near the top of the text area.
  int ink = 0;
  for (int y = fig.frame.divider() + 2; y < fig.frame.divider() + 30; ++y) {
    for (int x = 20; x < 200; ++x) {
      ink += display.GetPixel(x, y) == kBlack ? 1 : 0;
    }
  }
  EXPECT_GT(ink, 40);
}

// ---- F5: the Pascal compound document -------------------------------------------------

TEST_F(IntegrationTest, PascalCompoundDocumentBuildsRendersAndRoundTrips) {
  std::unique_ptr<TextData> doc = BuildPascalCompoundDocument();
  ASSERT_EQ(doc->embedded_count(), 1u);
  TableData* table = ObjectCast<TableData>(doc->embedded_objects()[0].data.get());
  ASSERT_NE(table, nullptr);
  // The table embeds text, equation, animation and the spreadsheet.
  EXPECT_EQ(table->at(0, 0).kind, TableData::CellKind::kObject);
  EXPECT_EQ(table->at(0, 1).kind, TableData::CellKind::kObject);
  EXPECT_EQ(table->at(1, 0).kind, TableData::CellKind::kObject);
  EXPECT_EQ(table->at(1, 1).kind, TableData::CellKind::kObject);
  TableData* pascal = ObjectCast<TableData>(table->at(1, 1).object.get());
  ASSERT_NE(pascal, nullptr);
  EXPECT_DOUBLE_EQ(pascal->Value(5, 2), 10);  // C(5,2).

  // Render the whole thing: text -> spread -> {text, eq, anim, spread}.
  TextView view;
  view.SetText(doc.get());
  auto im = InteractionManager::Create(*ws_, 560, 420, "pascal");
  im->SetChild(&view);
  im->RunOnce();
  ASSERT_EQ(view.children().size(), 1u);
  View* spread = view.children()[0];
  EXPECT_TRUE(spread->IsA("tableview"));
  EXPECT_EQ(spread->children().size(), 4u);
  // The animation is clickable and playable through the menus.
  View* anim_view = nullptr;
  for (View* child : spread->children()) {
    if (child->IsA("animview")) {
      anim_view = child;
    }
  }
  ASSERT_NE(anim_view, nullptr);
  Point anim_center = anim_view->DeviceBounds().center();
  im->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, anim_center));
  im->window()->Inject(InputEvent::MouseAt(EventType::kMouseUp, anim_center));
  im->window()->Inject(InputEvent::MenuChoice("Animation~Animate"));
  im->RunOnce();
  AnimView* anim = ObjectCast<AnimView>(anim_view);
  ASSERT_NE(anim, nullptr);
  EXPECT_TRUE(anim->playing());
  anim->Tick();
  EXPECT_EQ(anim->current_frame(), 1);

  // Round trip the whole compound document.
  std::string serialized = WriteDocument(*doc);
  ReadContext ctx;
  std::unique_ptr<DataObject> read = ReadDocument(serialized, &ctx);
  TextData* back = ObjectCast<TextData>(read.get());
  ASSERT_NE(back, nullptr);
  EXPECT_TRUE(ctx.ok()) << (ctx.errors().empty() ? "" : ctx.errors()[0]);
  TableData* back_table = ObjectCast<TableData>(back->embedded_objects()[0].data.get());
  ASSERT_NE(back_table, nullptr);
  TableData* back_pascal = ObjectCast<TableData>(back_table->at(1, 1).object.get());
  ASSERT_NE(back_pascal, nullptr);
  EXPECT_DOUBLE_EQ(back_pascal->Value(5, 2), 10);
  view.SetText(nullptr);
}

// ---- §2: multiple views of one data object across windows -----------------------------

TEST_F(IntegrationTest, TwoWindowsOneDataObjectStayInSync) {
  TextData shared;
  shared.SetText("the same information in more than one window\n");
  TextView view_a;
  TextView view_b;
  view_a.SetText(&shared);
  view_b.SetText(&shared);
  auto im_a = InteractionManager::Create(*ws_, 300, 100, "window A");
  auto im_b = InteractionManager::Create(*ws_, 300, 100, "window B");
  im_a->SetChild(&view_a);
  im_b->SetChild(&view_b);
  im_a->RunOnce();
  im_b->RunOnce();
  uint64_t b_before = im_b->window()->Display().Hash();
  // Edit through window A...
  view_a.SetDot(0);
  view_a.InsertText("EDIT: ");
  im_a->RunOnce();
  // ...window B has pending damage from the observer chain, and repaints.
  EXPECT_TRUE(im_b->HasPendingDamage());
  im_b->RunOnce();
  EXPECT_NE(im_b->window()->Display().Hash(), b_before);
  EXPECT_EQ(view_b.text()->GetAllText(), "EDIT: the same information in more than one window\n");
  view_a.SetText(nullptr);
  view_b.SetText(nullptr);
}

TEST_F(IntegrationTest, NormalAndPagedViewDifferentTypesSameData) {
  // "one window using the normal text view and the other using the WYSIWYG
  // text view" (§2).
  TextData shared;
  shared.SetText("draft body\n");
  TextView normal;
  PagedTextView paged;
  normal.SetText(&shared);
  paged.SetText(&shared);
  auto im_a = InteractionManager::Create(*ws_, 280, 120, "editor");
  auto im_b = InteractionManager::Create(*ws_, 280, 200, "preview");
  im_a->SetChild(&normal);
  im_b->SetChild(&paged);
  im_a->RunOnce();
  im_b->RunOnce();
  normal.SetDot(shared.size());
  normal.InsertText("added in the editor");
  im_a->RunOnce();
  im_b->RunOnce();
  EXPECT_EQ(paged.text()->GetAllText(), "draft body\nadded in the editor");
  normal.SetText(nullptr);
  paged.SetText(nullptr);
}

// ---- §8: window-system independence end to end --------------------------------------------

TEST_F(IntegrationTest, SameAppPixelIdenticalOnBothWindowSystems) {
  auto run_scene = [this](const char* backend) -> uint64_t {
    std::unique_ptr<WindowSystem> ws = WindowSystem::Open(backend);
    EXPECT_NE(ws, nullptr);
    Figure1 fig;
    fig.Build();
    auto im = InteractionManager::Create(*ws, 400, 240, "portable");
    im->SetChild(&fig.frame);
    im->RunOnce();
    // Drive identical input through it.
    WorkloadRng rng(42);
    for (const InputEvent& event : GenerateEventTrace(rng, 60, 400, 240)) {
      im->window()->Inject(event);
    }
    im->RunOnce();
    return im->window()->Display().Hash();
  };
  uint64_t itc_hash = run_scene("itc");
  uint64_t x11_hash = run_scene("x11");
  EXPECT_EQ(itc_hash, x11_hash);
}

TEST_F(IntegrationTest, X11ExposureRepaintsThroughTheViewTree) {
  // Footnote 5: X11 exposure does not propagate to inner views; the IM
  // translates it into damage and the update pass repaints everything under
  // the exposed rect.
  std::unique_ptr<WindowSystem> x11 = WindowSystem::Open("x11");
  Figure1 fig;
  fig.Build();
  auto im = InteractionManager::Create(*x11, 400, 240, "exposed");
  im->SetChild(&fig.frame);
  im->RunOnce();
  PixelImage before = im->window()->Display();
  X11Window* window = ObjectCast<X11Window>(im->window());
  ASSERT_NE(window, nullptr);
  window->Obscure(Rect{50, 50, 150, 100});
  window->Unobscure();
  // Contents were lost...
  im->window()->Flush();
  EXPECT_GT(im->window()->Display().DiffCount(before), 0);
  // ...but the expose event drives a full repaint of the damaged area.
  im->RunOnce();
  EXPECT_EQ(im->window()->Display().DiffCount(before), 0);
}

// ---- §6/§7: demand loading driven by document content ------------------------------------------

TEST_F(IntegrationTest, ReadingADocumentLoadsComponentModulesOnDemand) {
  // Serialize a compound document, unload everything, read it back: the
  // loader pulls in exactly the modules the content needs.
  WorkloadRng rng(5);
  CompoundDocumentSpec spec;
  spec.tables = 1;
  spec.drawings = 1;
  spec.equations = 1;
  spec.rasters = 1;
  std::unique_ptr<TextData> doc = GenerateCompoundDocument(rng, spec);
  std::string serialized = WriteDocument(*doc);
  doc.reset();
  Loader::Instance().UnloadAllForTest();
  EXPECT_FALSE(Loader::Instance().IsLoaded("table"));
  EXPECT_FALSE(Loader::Instance().IsLoaded("equation"));
  Loader::Instance().ClearLoadLog();
  ReadContext ctx;
  std::unique_ptr<DataObject> read = ReadDocument(serialized, &ctx);
  ASSERT_NE(read, nullptr);
  EXPECT_TRUE(Loader::Instance().IsLoaded("text"));
  EXPECT_TRUE(Loader::Instance().IsLoaded("table"));
  EXPECT_TRUE(Loader::Instance().IsLoaded("drawing"));
  EXPECT_TRUE(Loader::Instance().IsLoaded("equation"));
  EXPECT_TRUE(Loader::Instance().IsLoaded("raster"));
  // Animation was not in the document: not loaded.
  EXPECT_FALSE(Loader::Instance().IsLoaded("animation"));
  // The load log records first-use costs (bench_dynload measures these).
  EXPECT_GE(Loader::Instance().load_log().size(), 5u);
  // Re-require the modules for the remaining tests in this process.
  SetUp();
}

// ---- §4: printing by repointing the drawable --------------------------------------------------------

TEST_F(IntegrationTest, PrintingReusesTheViewTreeOnAPrinterDrawable) {
  Figure1 fig;
  fig.Build();
  auto im = InteractionManager::Create(*ws_, 400, 240, "to print");
  im->SetChild(&fig.frame);
  im->RunOnce();
  // Print the text view's subtree (frame chrome excluded, like ATK).
  PrintJob job(400, 300, 10);
  PrintView(fig.text_view, job);
  ASSERT_EQ(job.page_count(), 1);
  // The page carries real content: dark pixels from the letter text.
  EXPECT_GT(job.page(0).DiffCount(PixelImage(400, 300, kWhite)), 100);
  // The on-screen tree still works after re-allocation by the IM.
  im->window()->Resize(400, 240);
  im->RunOnce();
  EXPECT_GT(im->window()->Display().DiffCount(PixelImage(400, 240, kWhite)), 100);
}

// ---- EZ on a generated campus workload ----------------------------------------------------------------

TEST_F(IntegrationTest, EzSurvivesAGeneratedEditingSession) {
  EzApp ez;
  std::unique_ptr<InteractionManager> im = ez.Start(*ws_, {"ez"});
  WorkloadRng rng(99);
  std::unique_ptr<TextData> doc = GenerateCompoundDocument(rng, CompoundDocumentSpec{});
  ASSERT_TRUE(ez.LoadDocumentString(WriteDocument(*doc)));
  im->RunOnce();
  // Random clicks and typing over the whole window must never crash and must
  // leave a well-formed document.
  for (const InputEvent& event : GenerateEventTrace(rng, 400, 560, 400, 0.5)) {
    im->window()->Inject(event);
    if (rng.Chance(0.1)) {
      im->RunOnce();
    }
  }
  im->RunOnce();
  std::string saved = ez.SaveToString();
  ReadContext ctx;
  std::unique_ptr<DataObject> reread = ReadDocument(saved, &ctx);
  EXPECT_NE(reread, nullptr);
  EXPECT_TRUE(ctx.ok());
}

}  // namespace
}  // namespace atk
