// Tests for the remaining components: drawing (including the §3
// line-over-text case), equation, raster and animation.

#include <gtest/gtest.h>

#include <sstream>

#include "src/apps/standard_modules.h"
#include "src/base/interaction_manager.h"
#include "src/class_system/loader.h"
#include "src/components/animation/anim_view.h"
#include "src/components/drawing/draw_view.h"
#include "src/components/equation/eq_view.h"
#include "src/components/raster/raster_view.h"
#include "src/components/scroll/scrollbar_view.h"
#include "src/components/frame/frame_view.h"
#include "src/components/text/text_view.h"
#include "src/components/widgets/widgets.h"
#include "src/wm/window_system.h"

namespace atk {
namespace {

// A plain solid view for hosting inside frames.
class BlockHost : public View {
 public:
  void FullUpdate() override {
    if (graphic() != nullptr) {
      graphic()->FillRect(graphic()->LocalBounds(), kLightGray);
    }
  }
};

class ComponentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterStandardModules();
    Loader& loader = Loader::Instance();
    loader.Require("drawing");
    loader.Require("equation");
    loader.Require("raster");
    loader.Require("animation");
    loader.Require("widgets");
    loader.Require("scroll");
    loader.Require("frame");
    ws_ = WindowSystem::Open("itc");
    im_ = InteractionManager::Create(*ws_, 300, 200, "components");
  }
  void Pump() { im_->RunOnce(); }
  void Click(Point p) {
    im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, p));
    im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseUp, p));
    Pump();
  }

  std::unique_ptr<WindowSystem> ws_;
  std::unique_ptr<InteractionManager> im_;
};

// ---- Drawing ----------------------------------------------------------------

TEST_F(ComponentTest, DrawDataShapesAndHitTesting) {
  DrawData drawing;
  int line = drawing.AddLine(Point{10, 10}, Point{100, 10});
  int rect = drawing.AddRect(Rect{20, 40, 40, 30});
  EXPECT_EQ(drawing.shape_count(), 2);
  EXPECT_EQ(drawing.ShapeAt(Point{50, 10}), line);
  EXPECT_EQ(drawing.ShapeAt(Point{50, 12}), line);  // Within slop.
  EXPECT_EQ(drawing.ShapeAt(Point{20, 55}), rect);  // On the border.
  EXPECT_EQ(drawing.ShapeAt(Point{40, 55}), -1);    // Hollow interior.
  EXPECT_EQ(drawing.ShapeAt(Point{200, 200}), -1);
  drawing.MoveShape(line, 0, 50);
  EXPECT_EQ(drawing.ShapeAt(Point{50, 60}), line);
  drawing.RemoveShape(line);
  EXPECT_EQ(drawing.shape_count(), 1);
}

TEST_F(ComponentTest, DrawingLineOverTextParentalAuthority) {
  // §3's motivating case: text inside a drawing, a line drawn over it.
  DrawData drawing;
  drawing.AddText(Rect{10, 10, 120, 40}, "hello inside drawing");
  int line = drawing.AddLine(Point{0, 25}, Point{200, 25});  // Crosses the text.
  DrawView view;
  view.SetDataObject(&drawing);
  im_->SetChild(&view);
  Pump();
  // Click ON the line (even though it is over the text box): the drawing
  // decides — the line is selected, the text does not get the event.
  Click(Point{60, 25});
  EXPECT_EQ(view.selected_shape(), line);
  EXPECT_NE(im_->input_focus(), nullptr);
  // Click inside the text but away from the line: the text view gets it.
  Click(Point{40, 14});
  ASSERT_EQ(view.children().size(), 1u);
  View* text_child = view.children()[0];
  EXPECT_TRUE(text_child->IsA("textview"));
  EXPECT_EQ(im_->input_focus(), text_child);
  view.SetDataObject(nullptr);
}

TEST_F(ComponentTest, DrawingLineOverTextFailsUnderGlobalDispatch) {
  // The same clicks under the Base Editor's global/physical model: the text
  // rectangle is deeper, so it steals the click meant for the line — the
  // behaviour the paper says was "impossible to accomplish".
  DrawData drawing;
  drawing.AddText(Rect{10, 10, 120, 40}, "hello inside drawing");
  int line = drawing.AddLine(Point{0, 25}, Point{200, 25});
  DrawView view;
  view.SetDataObject(&drawing);
  im_->SetChild(&view);
  im_->SetDispatchMode(InteractionManager::DispatchMode::kGlobalPhysical);
  Pump();
  Click(Point{60, 25});
  EXPECT_NE(view.selected_shape(), line);  // The drawing never saw it.
  view.SetDataObject(nullptr);
}

TEST_F(ComponentTest, DrawingRoundTripsThroughDatastream) {
  DrawData drawing;
  drawing.AddLine(Point{1, 2}, Point{30, 40}, 2);
  drawing.AddRect(Rect{5, 6, 20, 10}, true);
  drawing.AddEllipse(Rect{0, 0, 9, 9});
  drawing.AddPolyline({{0, 0}, {5, 5}, {10, 0}});
  drawing.AddText(Rect{2, 2, 50, 12}, "label text");
  ReadContext ctx;
  std::unique_ptr<DataObject> read = ReadDocument(WriteDocument(drawing), &ctx);
  DrawData* back = ObjectCast<DrawData>(read.get());
  ASSERT_NE(back, nullptr);
  ASSERT_EQ(back->shape_count(), 5);
  EXPECT_EQ(back->shape(0).kind, DrawData::ShapeKind::kLine);
  EXPECT_EQ(back->shape(0).points[1], (Point{30, 40}));
  EXPECT_EQ(back->shape(0).line_width, 2);
  EXPECT_TRUE(back->shape(1).filled);
  EXPECT_EQ(back->shape(3).points.size(), 3u);
  ASSERT_EQ(back->shape(4).kind, DrawData::ShapeKind::kText);
  ASSERT_NE(back->shape(4).text, nullptr);
  EXPECT_EQ(back->shape(4).text->GetAllText(), "label text");
  EXPECT_EQ(back->shape(4).box, (Rect{2, 2, 50, 12}));
}

TEST_F(ComponentTest, DrawViewDragMovesShape) {
  DrawData drawing;
  int rect = drawing.AddRect(Rect{20, 20, 30, 20});
  DrawView view;
  view.SetDataObject(&drawing);
  im_->SetChild(&view);
  Pump();
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, Point{20, 30}));
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseDrag, Point{60, 50}));
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseUp, Point{60, 50}));
  Pump();
  EXPECT_EQ(drawing.shape(rect).box.origin(), (Point{60, 40}));
  view.SetDataObject(nullptr);
}

// ---- Equation ------------------------------------------------------------------

TEST_F(ComponentTest, EquationParsing) {
  bool ok = false;
  std::string error;
  EqNodePtr root = ParseEquation("a+b", &ok, &error);
  ASSERT_TRUE(ok) << error;
  ASSERT_EQ(root->kind, EqNode::Kind::kRow);
  EXPECT_EQ(root->children.size(), 3u);
  EXPECT_EQ(root->children[0]->symbol, "a");
  EXPECT_EQ(root->children[1]->symbol, "+");

  root = ParseEquation("x^{n+1}_i", &ok, &error);
  ASSERT_TRUE(ok) << error;
  const EqNode* script = root->children[0].get();
  ASSERT_EQ(script->kind, EqNode::Kind::kScript);
  EXPECT_EQ(script->first->symbol, "x");
  ASSERT_NE(script->sup, nullptr);
  ASSERT_NE(script->sub, nullptr);
  EXPECT_EQ(script->sup->children.size(), 3u);

  root = ParseEquation("\\frac{a+1}{b}", &ok, &error);
  ASSERT_TRUE(ok) << error;
  ASSERT_EQ(root->children[0]->kind, EqNode::Kind::kFrac);

  root = ParseEquation("\\sqrt{z}+\\pi", &ok, &error);
  ASSERT_TRUE(ok) << error;
  EXPECT_EQ(root->children[0]->kind, EqNode::Kind::kSqrt);
  EXPECT_EQ(root->children[2]->symbol, "pi");
}

TEST_F(ComponentTest, EquationParseErrorsAreReported) {
  bool ok = true;
  std::string error;
  ParseEquation("\\frac{a}", &ok, &error);
  EXPECT_FALSE(ok);
  ParseEquation("{unclosed", &ok, &error);
  EXPECT_FALSE(ok);
  ParseEquation("a}b", &ok, &error);
  EXPECT_FALSE(ok);
}

TEST_F(ComponentTest, EquationLayoutMetrics) {
  bool ok = false;
  std::string error;
  EqNodePtr simple = ParseEquation("x", &ok, &error);
  EqNodePtr frac = ParseEquation("\\frac{x}{y}", &ok, &error);
  EqView::Box simple_box = EqView::Measure(simple.get(), 12);
  EqView::Box frac_box = EqView::Measure(frac.get(), 12);
  // A fraction is taller than a symbol and its baseline sits lower.
  EXPECT_GT(frac_box.height, simple_box.height);
  EXPECT_GT(frac_box.baseline, simple_box.baseline);
  // Scripts shrink: x^2 is wider than x but not twice the height.
  EqNodePtr script = ParseEquation("x^2", &ok, &error);
  EqView::Box script_box = EqView::Measure(script.get(), 12);
  EXPECT_GT(script_box.width, simple_box.width);
  EXPECT_LT(script_box.height, 2 * simple_box.height);
}

TEST_F(ComponentTest, EquationRendersAndRoundTrips) {
  EqData eq;
  eq.SetSource("v_{i,j} = v_{i-1,j-1} + v_{i-1,j}");
  EXPECT_TRUE(eq.parse_ok());
  EqView view;
  view.SetDataObject(&eq);
  im_->SetChild(&view);
  Pump();
  EXPECT_GT(im_->window()->Display().DiffCount(PixelImage(300, 200, kWhite)), 30);
  ReadContext ctx;
  std::unique_ptr<DataObject> read = ReadDocument(WriteDocument(eq), &ctx);
  EqData* back = ObjectCast<EqData>(read.get());
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->source(), eq.source());
  EXPECT_TRUE(back->parse_ok());
  view.SetDataObject(nullptr);
}

// ---- Raster ------------------------------------------------------------------------

TEST_F(ComponentTest, RasterPixelsAndInvert) {
  RasterData raster(8, 4);
  EXPECT_EQ(raster.Population(), 0);
  raster.Set(0, 0, true);
  raster.Set(7, 3, true);
  raster.Set(8, 0, true);  // Out of bounds: ignored.
  EXPECT_EQ(raster.Population(), 2);
  EXPECT_TRUE(raster.Get(0, 0));
  EXPECT_FALSE(raster.Get(1, 1));
  raster.Invert();
  EXPECT_EQ(raster.Population(), 30);
}

TEST_F(ComponentTest, RasterExternalFormIsHexRowsUnder80Columns) {
  RasterData raster(64, 8);
  raster.Set(0, 0, true);
  raster.Set(63, 7, true);
  std::ostringstream out;
  DataStreamWriter writer(out);
  raster.Write(writer);
  // §5: rows begin on new lines, all 7-bit, lines comfortably under 80.
  EXPECT_TRUE(writer.all_seven_bit());
  EXPECT_LT(writer.max_line_length(), 80);
  std::string body = out.str();
  EXPECT_NE(body.find("\\rasterdim{64,8}"), std::string::npos);
  // 8 hex rows of 16 nibbles each.
  EXPECT_NE(body.find("8000000000000000"), std::string::npos);
  EXPECT_NE(body.find("0000000000000001"), std::string::npos);
}

TEST_F(ComponentTest, RasterRoundTripIsExact) {
  RasterData raster(33, 9);  // Non-multiple-of-4 width exercises padding.
  for (int y = 0; y < 9; ++y) {
    for (int x = 0; x < 33; ++x) {
      raster.Set(x, y, (x * 7 + y * 3) % 5 == 0);
    }
  }
  ReadContext ctx;
  std::unique_ptr<DataObject> read = ReadDocument(WriteDocument(raster), &ctx);
  RasterData* back = ObjectCast<RasterData>(read.get());
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->width(), 33);
  EXPECT_EQ(back->height(), 9);
  EXPECT_EQ(back->Population(), raster.Population());
  for (int y = 0; y < 9; ++y) {
    for (int x = 0; x < 33; ++x) {
      ASSERT_EQ(back->Get(x, y), raster.Get(x, y)) << x << "," << y;
    }
  }
}

TEST_F(ComponentTest, RasterImageConversionThreshold) {
  PixelImage image(4, 4, kWhite);
  image.FillRect(Rect{0, 0, 2, 4}, kBlack);
  RasterData raster;
  raster.FromImage(image);
  EXPECT_EQ(raster.Population(), 8);
  PixelImage round = raster.ToImage();
  EXPECT_EQ(round.GetPixel(0, 0), kBlack);
  EXPECT_EQ(round.GetPixel(3, 3), kWhite);
}

TEST_F(ComponentTest, RasterViewScalesAndPaints) {
  RasterData raster(8, 8);
  RasterView view;
  view.SetDataObject(&raster);
  im_->SetChild(&view);
  Pump();
  EXPECT_GE(view.Scale(), 2);  // 300x200 window: plenty of room to magnify.
  // Click toggles the pixel under the cursor.
  Click(Point{view.Scale() * 3 + 1, view.Scale() * 2 + 1});
  EXPECT_TRUE(raster.Get(3, 2));
  Click(Point{view.Scale() * 3 + 1, view.Scale() * 2 + 1});
  EXPECT_FALSE(raster.Get(3, 2));
  view.SetDataObject(nullptr);
}

// ---- Animation ----------------------------------------------------------------------

TEST_F(ComponentTest, AnimationFramesAccumulate) {
  AnimData anim;
  int f0 = anim.AddFrame();
  anim.AddRect(f0, Rect{0, 0, 5, 5});
  int f1 = anim.AddFrame(/*copy_previous=*/true);
  anim.AddRect(f1, Rect{10, 0, 5, 5});
  EXPECT_EQ(anim.frame_count(), 2);
  EXPECT_EQ(anim.frame(0).commands.size(), 1u);
  EXPECT_EQ(anim.frame(1).commands.size(), 2u);
}

TEST_F(ComponentTest, AnimViewPlaybackIsDeterministic) {
  AnimData anim;
  for (int i = 0; i < 3; ++i) {
    int f = anim.AddFrame();
    anim.AddRect(f, Rect{i * 10, 0, 5, 5});
  }
  AnimView view;
  view.SetDataObject(&anim);
  im_->SetChild(&view);
  Pump();
  EXPECT_EQ(view.current_frame(), 0);
  view.Tick();  // Not playing: no-op.
  EXPECT_EQ(view.current_frame(), 0);
  view.Play();
  view.Tick();
  EXPECT_EQ(view.current_frame(), 1);
  view.Tick();
  view.Tick();  // Wraps.
  EXPECT_EQ(view.current_frame(), 0);
  view.Stop();
  view.Tick();
  EXPECT_EQ(view.current_frame(), 0);
  view.SetDataObject(nullptr);
}

TEST_F(ComponentTest, AnimationMenusDriveProcTable) {
  AnimData anim;
  anim.AddFrame();
  anim.AddFrame();
  AnimView view;
  view.SetDataObject(&anim);
  im_->SetChild(&view);
  im_->SetInputFocus(&view);
  Pump();
  EXPECT_TRUE(im_->InvokeMenu("Animation~Animate"));
  EXPECT_TRUE(view.playing());
  view.Tick();
  EXPECT_EQ(view.current_frame(), 1);
  EXPECT_TRUE(im_->InvokeMenu("Animation~Rewind"));
  EXPECT_EQ(view.current_frame(), 0);
  view.SetDataObject(nullptr);
}

TEST_F(ComponentTest, AnimationRoundTrips) {
  AnimData anim;
  int f = anim.AddFrame();
  anim.AddLine(f, Point{1, 2}, Point{3, 4});
  anim.AddText(f, Point{5, 6}, "hi there");
  f = anim.AddFrame(true);
  anim.AddEllipse(f, Rect{0, 0, 10, 10});
  ReadContext ctx;
  std::unique_ptr<DataObject> read = ReadDocument(WriteDocument(anim), &ctx);
  AnimData* back = ObjectCast<AnimData>(read.get());
  ASSERT_NE(back, nullptr);
  ASSERT_EQ(back->frame_count(), 2);
  ASSERT_EQ(back->frame(0).commands.size(), 2u);
  EXPECT_EQ(back->frame(0).commands[1].text, "hi there");
  EXPECT_EQ(back->frame(1).commands.size(), 3u);
  EXPECT_EQ(back->frame(1).commands[2].kind, AnimData::Command::Kind::kEllipse);
}

// ---- Widgets ----------------------------------------------------------------------------

TEST_F(ComponentTest, ButtonInvokesActionOnClickInside) {
  ButtonView button("Send", "");
  int fired = 0;
  button.SetAction([&fired] { ++fired; });
  im_->SetChild(&button);
  Pump();
  Click(Point{50, 50});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(button.click_count(), 1);
  // Press inside, release outside: no fire.
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, Point{50, 50}));
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseUp, Point{500, 500}));
  Pump();
  EXPECT_EQ(fired, 1);
}

TEST_F(ComponentTest, ListViewSelectionAndCallback) {
  ListView list;
  list.SetItems({"alpha", "beta", "gamma"});
  int last_selected = -1;
  list.SetOnSelect([&](int index) { last_selected = index; });
  im_->SetChild(&list);
  Pump();
  Click(Point{10, list.RowHeight() + 2});  // Second row.
  EXPECT_EQ(list.selected(), 1);
  EXPECT_EQ(last_selected, 1);
  ASSERT_NE(list.SelectedItem(), nullptr);
  EXPECT_EQ(*list.SelectedItem(), "beta");
  // Keyboard next/previous.
  im_->window()->Inject(InputEvent::KeyPress('n'));
  Pump();
  EXPECT_EQ(list.selected(), 2);
  im_->window()->Inject(InputEvent::KeyPress('p'));
  Pump();
  EXPECT_EQ(list.selected(), 1);
}

TEST_F(ComponentTest, ScrollBarElevatorTracksAndScrolls) {
  // A list long enough to scroll.
  ListView list;
  std::vector<std::string> items;
  for (int i = 0; i < 100; ++i) {
    items.push_back("item " + std::to_string(i));
  }
  list.SetItems(items);
  ScrollBarView scrollbar;
  scrollbar.SetBody(&list);
  im_->SetChild(&scrollbar);
  Pump();
  Rect elevator = scrollbar.ElevatorRect();
  ASSERT_FALSE(elevator.IsEmpty());
  EXPECT_LT(elevator.height, 200);  // Proportional, not full track.
  EXPECT_EQ(elevator.y, 1);         // At the top initially.
  // Click below the elevator: page down.
  im_->window()->Inject(
      InputEvent::MouseAt(EventType::kMouseDown, Point{5, elevator.bottom() + 20}));
  im_->window()->Inject(
      InputEvent::MouseAt(EventType::kMouseUp, Point{5, elevator.bottom() + 20}));
  Pump();
  EXPECT_GT(list.first_visible(), 0);
  Rect moved = scrollbar.ElevatorRect();
  EXPECT_GT(moved.y, elevator.y);
  // Events to the right of the bar go to the list.
  Click(Point{100, 3});
  EXPECT_EQ(list.selected(), static_cast<int>(list.first_visible()));
}

TEST_F(ComponentTest, FrameDividerDragAndDialog) {
  FrameView frame;
  BlockHost body;
  frame.SetBody(&body);
  im_->SetChild(&frame);
  Pump();
  int before = frame.divider();
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, Point{50, before + 2}));
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseDrag, Point{50, before + 30}));
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseUp, Point{50, before + 30}));
  Pump();
  EXPECT_EQ(frame.divider(), before + 30);
  // Dialog with scripted answer.
  frame.PushDialogAnswer("yes");
  EXPECT_EQ(frame.AskUser("Save changes?"), "yes");
  EXPECT_EQ(frame.last_prompt(), "Save changes?");
  // No scripted answer: fallback.
  EXPECT_EQ(frame.AskUser("Again?", "no"), "no");
}

}  // namespace
}  // namespace atk
