// The paper's extension story, §1 verbatim: "If a member of the music
// department creates a music component and embeds that component into a
// text component ... the code for the music component will be dynamically
// loaded into the application.  ...  The editor did not have to be
// recompiled, relinked, or otherwise modified to use the new music
// component.  Further, all users of the text component automatically acquire
// the ability to use the music component: it can be sent in a mail message
// as easily as edited in a document."
//
// This file plays the music department: it defines a brand-new component
// (MusicData/MusicView) that NOTHING in src/ knows about, packages it as a
// loader module, and then proves every claim above against the unmodified
// editor, text component and mail system.

#include <gtest/gtest.h>

#include "src/apps/ez_app.h"
#include "src/apps/messages_app.h"
#include "src/apps/standard_modules.h"
#include "src/base/default_views.h"
#include "src/class_system/loader.h"
#include "src/components/text/text_view.h"
#include "src/wm/window_system.h"

namespace atk {
namespace {

// ---- The music department's component (out-of-tree code) ----------------------

// A melody: a sequence of notes "C4 D4 E4..." with durations.
class MusicData : public DataObject {
  ATK_DECLARE_CLASS(MusicData)

 public:
  struct Note {
    int pitch = 60;     // MIDI-style.
    int duration = 1;   // In eighths.
  };

  void AddNote(int pitch, int duration) {
    notes_.push_back(Note{pitch, duration});
    Change change;
    change.kind = Change::Kind::kInserted;
    change.pos = static_cast<int64_t>(notes_.size()) - 1;
    NotifyObservers(change);
  }
  const std::vector<Note>& notes() const { return notes_; }

  void WriteBody(DataStreamWriter& writer) const override {
    for (const Note& note : notes_) {
      writer.WriteDirective("note", std::to_string(note.pitch) + "," +
                                        std::to_string(note.duration));
      writer.WriteNewline();
    }
  }

  bool ReadBody(DataStreamReader& reader, ReadContext&) override {
    using Kind = DataStreamReader::Token::Kind;
    notes_.clear();
    while (true) {
      DataStreamReader::Token token = reader.Next();
      if (token.kind == Kind::kEndData) {
        return true;
      }
      if (token.kind == Kind::kEof) {
        return false;
      }
      if (token.kind == Kind::kDirective && token.type == "note") {
        Note note;
        std::string args(token.text);
        if (std::sscanf(args.c_str(), "%d,%d", &note.pitch, &note.duration) == 2) {
          notes_.push_back(note);
        }
      } else if (token.kind == Kind::kBeginData) {
        reader.SkipObject(token.type, token.id);
      }
    }
  }

 private:
  std::vector<Note> notes_;
};
ATK_DEFINE_CLASS(MusicData, DataObject, "music")

// A tiny staff view: five lines, note heads by pitch.
class MusicView : public View {
  ATK_DECLARE_CLASS(MusicView)

 public:
  MusicData* music() const { return ObjectCast<MusicData>(data_object()); }

  void FullUpdate() override {
    Graphic* g = graphic();
    if (g == nullptr) {
      return;
    }
    g->Clear();
    g->SetForeground(kBlack);
    for (int line = 0; line < 5; ++line) {
      int y = 6 + line * 4;
      g->DrawLine(Point{2, y}, Point{g->width() - 3, y});
    }
    if (music() == nullptr) {
      return;
    }
    int x = 6;
    for (const auto& note : music()->notes()) {
      int y = 22 - (note.pitch - 60);
      g->FillEllipse(Rect{x, y - 2, 4, 4});
      x += 4 + note.duration * 3;
    }
  }

  Size DesiredSize(Size available) override {
    int width = 12;
    if (music() != nullptr) {
      for (const auto& note : music()->notes()) {
        width += 4 + note.duration * 3;
      }
    }
    return Size{std::min(width, available.width > 0 ? available.width : width), 28};
  }

  View* Hit(const InputEvent& event) override {
    if (event.type == EventType::kMouseDown && music() != nullptr) {
      // Clicking the staff appends a note at the clicked pitch.
      music()->AddNote(60 + (22 - event.pos.y), 2);
      RequestInputFocus();
      return this;
    }
    return event.type == EventType::kMouseUp ? this : nullptr;
  }
};
ATK_DEFINE_CLASS(MusicView, View, "musicview")

// The module the music department ships.
void DeclareMusicModule() {
  static bool done = [] {
    ModuleSpec spec;
    spec.name = "music";
    spec.provides = {"music", "musicview"};
    spec.text_bytes = 22 * 1024;
    spec.data_bytes = 2 * 1024;
    spec.init = [] {
      ClassRegistry::Instance().Register(MusicData::StaticClassInfo());
      ClassRegistry::Instance().Register(MusicView::StaticClassInfo());
      SetDefaultViewName("music", "musicview");
    };
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  (void)done;
}

class ExtensionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterStandardModules();
    DeclareMusicModule();
    Loader::Instance().Require("text");
    ws_ = WindowSystem::Open("itc");
  }
  std::unique_ptr<WindowSystem> ws_;
};

TEST_F(ExtensionTest, EditorDisplaysMusicWithoutModification) {
  // A music document arrives (say, by mail); the stock editor opens it.
  std::string document;
  {
    TextData text;
    text.SetText("Here is the theme:\n");
    Loader::Instance().Require("music");
    auto melody = std::make_unique<MusicData>();
    melody->AddNote(60, 2);
    melody->AddNote(64, 2);
    melody->AddNote(67, 4);
    text.InsertObject(text.size(), std::move(melody));
    document = WriteDocument(text);
    Loader::Instance().Unload("music");
  }
  EXPECT_FALSE(Loader::Instance().IsLoaded("music"));

  EzApp ez;  // Stock editor: knows nothing about music.
  std::unique_ptr<InteractionManager> im = ez.Start(*ws_, {"ez"});
  ASSERT_TRUE(ez.LoadDocumentString(document));
  // Reading loaded the music module on demand...
  EXPECT_TRUE(Loader::Instance().IsLoaded("music"));
  im->RunOnce();
  // ...and the staff view is live inside the text.
  ASSERT_EQ(ez.text_view()->children().size(), 1u);
  View* staff = ez.text_view()->children()[0];
  EXPECT_TRUE(staff->IsA("musicview"));
  // "Except for a slight delay to load the code, the user is unaware":
  // clicking the staff edits the melody in place.
  Point on_staff = staff->DeviceBounds().center();
  im->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, on_staff));
  im->window()->Inject(InputEvent::MouseAt(EventType::kMouseUp, on_staff));
  im->RunOnce();
  MusicData* melody = ObjectCast<MusicData>(staff->data_object());
  ASSERT_NE(melody, nullptr);
  EXPECT_EQ(melody->notes().size(), 4u);
}

TEST_F(ExtensionTest, MusicTravelsInMailLikeAnyComponent) {
  Loader::Instance().Require("music");
  MessagesApp app;
  TextData body;
  body.SetText("new school song attached\n");
  auto melody = std::make_unique<MusicData>();
  melody->AddNote(62, 2);
  melody->AddNote(65, 2);
  body.InsertObject(body.size(), std::move(melody));
  MailMessage message;
  message.from = "music@andrew";
  message.subject = "school song";
  message.body = WriteDocument(body);
  ASSERT_TRUE(app.store().Deliver("mail", std::move(message)));
  // The receiver parses the body; the melody survives intact.
  std::unique_ptr<InteractionManager> im = app.Start(*ws_, {"messages"});
  im->RunOnce();
  app.folder_list()->Select(0);
  im->RunOnce();
  app.caption_list()->Select(0);
  im->RunOnce();
  ASSERT_EQ(app.body_view()->text()->embedded_count(), 1u);
  MusicData* received =
      ObjectCast<MusicData>(app.body_view()->text()->embedded_objects()[0].data.get());
  ASSERT_NE(received, nullptr);
  EXPECT_EQ(received->notes().size(), 2u);
  EXPECT_EQ(received->notes()[1].pitch, 65);
}

TEST_F(ExtensionTest, WithoutTheModuleTheDocumentStillSurvives) {
  // A site without the music package: the document round-trips untouched
  // through the UnknownObject path, and works again where the package exists.
  Loader::Instance().Require("music");
  TextData text;
  text.SetText("song: ");
  auto melody = std::make_unique<MusicData>();
  melody->AddNote(72, 1);
  text.InsertObject(text.size(), std::move(melody));
  std::string document = WriteDocument(text);

  // Simulate the package-less site: unload AND undeclare by using a scoped
  // unload (classes unregistered; the module table entry remains, so mimic
  // absence by checking the Unknown path with a renamed type).
  std::string foreign = document;
  size_t pos;
  while ((pos = foreign.find("{music")) != std::string::npos) {
    foreign.replace(pos, 6, "{lute7");
  }
  while ((pos = foreign.find("musicview")) != std::string::npos) {
    foreign.replace(pos, 9, "lute7view");
  }
  ReadContext ctx;
  std::unique_ptr<DataObject> read = ReadDocument(foreign, &ctx);
  TextData* round = ObjectCast<TextData>(read.get());
  ASSERT_NE(round, nullptr);
  ASSERT_EQ(round->embedded_count(), 1u);
  EXPECT_EQ(round->embedded_objects()[0].data->DataTypeName(), "lute7");
  // Saved again, the unknown block is preserved bit for bit.
  std::string resaved = WriteDocument(*round);
  EXPECT_NE(resaved.find("\\note{72,1}"), std::string::npos);
}

}  // namespace
}  // namespace atk
