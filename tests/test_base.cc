// Tests for the toolkit core: the view tree, parental-authority event
// dispatch, the delayed-update mechanism, focus/menu/cursor/keymap
// arbitration, data objects and document round trips, and runapp.

#include <gtest/gtest.h>

#include "src/base/application.h"
#include "src/base/data_object.h"
#include "src/base/interaction_manager.h"
#include "src/base/print.h"
#include "src/base/proctable.h"
#include "src/base/view.h"
#include "src/class_system/loader.h"
#include "src/wm/window_system.h"

namespace atk {
namespace {

// ---- Test fixtures -----------------------------------------------------------

// A solid-color view that records the events it receives.
class BlockView : public View {
  ATK_DECLARE_CLASS(BlockView)

 public:
  BlockView() = default;
  explicit BlockView(Color c) : color_(c) {}

  void FullUpdate() override {
    if (graphic() != nullptr) {
      graphic()->FillRect(graphic()->LocalBounds(), color_);
      ++paints;
    }
  }

  View* Hit(const InputEvent& event) override {
    if (View* child_hit = View::Hit(event)) {
      return child_hit;
    }
    last_event = event;
    ++hits;
    if (event.type == EventType::kMouseDown && wants_focus_on_click) {
      RequestInputFocus();
    }
    return accepts_mouse ? this : nullptr;
  }

  bool HandleKey(char key, unsigned) override {
    if (!accepts_keys) {
      return false;
    }
    typed += key;
    return true;
  }

  void FillMenus(MenuList& menus) override {
    for (const auto& [spec, proc] : menu_items) {
      menus.Add(spec, proc);
    }
  }

  const KeyMap* GetKeyMap() const override { return keymap.size() ? &keymap : nullptr; }

  Color color_ = kLightGray;
  bool accepts_mouse = true;
  bool accepts_keys = false;
  bool wants_focus_on_click = false;
  int hits = 0;
  int paints = 0;
  std::string typed;
  InputEvent last_event;
  std::vector<std::pair<std::string, std::string>> menu_items;
  KeyMap keymap;
};
ATK_DEFINE_CLASS(BlockView, View, "blockview")

// A split view: left/right children, each getting half the space.
class SplitView : public View {
  ATK_DECLARE_CLASS(SplitView)

 public:
  void Layout() override {
    Rect b = graphic() != nullptr ? graphic()->LocalBounds() : Rect{};
    int half = b.width / 2;
    if (children().size() >= 1) {
      children()[0]->Allocate(Rect{0, 0, half, b.height}, graphic());
    }
    if (children().size() >= 2) {
      children()[1]->Allocate(Rect{half, 0, b.width - half, b.height}, graphic());
    }
  }
};
ATK_DEFINE_CLASS(SplitView, View, "splitview")

class BaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterWindowSystemModules();
    ws_ = WindowSystem::Open("itc");
    ASSERT_NE(ws_, nullptr);
    im_ = InteractionManager::Create(*ws_, 200, 100, "test");
  }

  void Pump() { im_->RunOnce(); }

  std::unique_ptr<WindowSystem> ws_;
  std::unique_ptr<InteractionManager> im_;
};

// ---- View tree basics -----------------------------------------------------------

TEST_F(BaseTest, TreeLinksAndDepth) {
  BlockView a;
  BlockView b;
  im_->SetChild(&a);
  a.AddChild(&b);
  EXPECT_EQ(a.parent(), im_.get());
  EXPECT_EQ(b.parent(), &a);
  EXPECT_EQ(b.GetIM(), im_.get());
  EXPECT_EQ(im_->TreeDepth(), 0);
  EXPECT_EQ(b.TreeDepth(), 2);
}

TEST_F(BaseTest, ChildDestructionUnlinks) {
  BlockView a;
  im_->SetChild(&a);
  {
    BlockView b;
    a.AddChild(&b);
    EXPECT_EQ(a.children().size(), 1u);
  }
  EXPECT_TRUE(a.children().empty());
}

TEST_F(BaseTest, AllocationCreatesClippedSubGraphic) {
  BlockView a(kBlack);
  im_->SetChild(&a);
  EXPECT_TRUE(a.HasGraphic());
  EXPECT_EQ(a.DeviceBounds(), (Rect{0, 0, 200, 100}));
  Pump();
  EXPECT_EQ(im_->window()->Display().GetPixel(100, 50), kBlack);
}

TEST_F(BaseTest, LayoutSplitsSpace) {
  SplitView split;
  BlockView left(kBlack);
  BlockView right(kWhite);
  split.AddChild(&left);
  split.AddChild(&right);
  im_->SetChild(&split);
  EXPECT_EQ(left.DeviceBounds(), (Rect{0, 0, 100, 100}));
  EXPECT_EQ(right.DeviceBounds(), (Rect{100, 0, 100, 100}));
  Pump();
  EXPECT_EQ(im_->window()->Display().GetPixel(50, 50), kBlack);
  EXPECT_EQ(im_->window()->Display().GetPixel(150, 50), kWhite);
}

TEST_F(BaseTest, ResizeReallocatesTree) {
  SplitView split;
  BlockView left(kBlack);
  BlockView right(kGray);
  split.AddChild(&left);
  split.AddChild(&right);
  im_->SetChild(&split);
  im_->window()->Resize(300, 80);
  Pump();
  EXPECT_EQ(left.DeviceBounds(), (Rect{0, 0, 150, 80}));
  EXPECT_EQ(right.DeviceBounds(), (Rect{150, 0, 150, 80}));
  EXPECT_EQ(im_->window()->Display().GetPixel(10, 10), kBlack);
  EXPECT_EQ(im_->window()->Display().GetPixel(250, 40), kGray);
}

// ---- Parental-authority dispatch ---------------------------------------------------

TEST_F(BaseTest, MouseEventRoutesDownToChild) {
  SplitView split;
  BlockView left;
  BlockView right;
  split.AddChild(&left);
  split.AddChild(&right);
  im_->SetChild(&split);
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, Point{150, 50}));
  Pump();
  EXPECT_EQ(left.hits, 0);
  EXPECT_EQ(right.hits, 1);
  // Coordinates arrive child-local.
  EXPECT_EQ(right.last_event.pos, (Point{50, 50}));
}

TEST_F(BaseTest, DecliningChildLetsEventFallThrough) {
  SplitView split;
  BlockView left;
  left.accepts_mouse = false;
  split.AddChild(&left);
  im_->SetChild(&split);
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, Point{10, 10}));
  Pump();
  EXPECT_EQ(left.hits, 1);       // Consulted...
  EXPECT_EQ(im_->mouse_grab(), nullptr);  // ...but declined; nobody grabbed.
}

TEST_F(BaseTest, MouseGrabDeliversDragAndUpToAcceptor) {
  SplitView split;
  BlockView left;
  BlockView right;
  split.AddChild(&left);
  split.AddChild(&right);
  im_->SetChild(&split);
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, Point{10, 10}));
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseDrag, Point{150, 50}));
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseUp, Point{180, 70}));
  Pump();
  EXPECT_EQ(left.hits, 3);  // Down, drag and up all went to the grab.
  EXPECT_EQ(right.hits, 0);
  // Drag coordinates stay relative to the grabbed view even outside it.
  EXPECT_EQ(left.last_event.pos, (Point{180, 70}));
  EXPECT_EQ(im_->mouse_grab(), nullptr);  // Released on up.
}

// A parent that steals clicks near its center line even over its children —
// the frame's divider-drag case from §3.
class StealingParent : public SplitView {
  ATK_DECLARE_CLASS(StealingParent)

 public:
  View* Hit(const InputEvent& event) override {
    int center = bounds().width / 2;
    if (event.pos.x >= center - 5 && event.pos.x < center + 5) {
      ++steals;
      return this;
    }
    return SplitView::Hit(event);
  }
  int steals = 0;
};
ATK_DEFINE_CLASS(StealingParent, SplitView, "stealingparent")

TEST_F(BaseTest, ParentMayClaimEventsOverChildren) {
  StealingParent parent;
  BlockView left;
  BlockView right;
  parent.AddChild(&left);
  parent.AddChild(&right);
  im_->SetChild(&parent);
  // Click near the dividing line: parent takes it although geometrically the
  // point is inside a child.
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, Point{98, 50}));
  Pump();
  EXPECT_EQ(parent.steals, 1);
  EXPECT_EQ(left.hits, 0);
  // Away from the line, children get it as usual.
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseUp, Point{98, 50}));
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, Point{20, 50}));
  Pump();
  EXPECT_EQ(left.hits, 1);
}

TEST_F(BaseTest, GlobalPhysicalModeBypassesParent) {
  // The same scenario under the Base Editor's model: the deepest rectangle
  // wins and the parent never gets a say.
  StealingParent parent;
  BlockView left;
  BlockView right;
  parent.AddChild(&left);
  parent.AddChild(&right);
  im_->SetChild(&parent);
  im_->SetDispatchMode(InteractionManager::DispatchMode::kGlobalPhysical);
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, Point{98, 50}));
  Pump();
  EXPECT_EQ(parent.steals, 0);
  EXPECT_EQ(left.hits, 1);
}

// ---- Delayed update ------------------------------------------------------------------

TEST_F(BaseTest, PostUpdateCoalescesIntoOneCycle) {
  BlockView a;
  im_->SetChild(&a);
  Pump();
  a.paints = 0;
  im_->ResetStats();
  a.PostUpdate(Rect{0, 0, 10, 10});
  a.PostUpdate(Rect{5, 5, 10, 10});
  a.PostUpdate(Rect{0, 0, 10, 10});
  EXPECT_TRUE(im_->HasPendingDamage());
  Pump();
  EXPECT_EQ(a.paints, 1);  // One update pass, not three.
  EXPECT_EQ(im_->stats().update_cycles, 1u);
  EXPECT_EQ(im_->stats().damage_posts, 3u);
  EXPECT_FALSE(im_->HasPendingDamage());
}

TEST_F(BaseTest, UpdateOnlyTouchesDamagedViews) {
  SplitView split;
  BlockView left;
  BlockView right;
  split.AddChild(&left);
  split.AddChild(&right);
  im_->SetChild(&split);
  Pump();
  left.paints = 0;
  right.paints = 0;
  left.PostUpdate(Rect{0, 0, 5, 5});
  Pump();
  EXPECT_EQ(left.paints, 1);
  EXPECT_EQ(right.paints, 0);
}

TEST_F(BaseTest, DamageClipPreventsOverpaint) {
  BlockView a(kBlack);
  im_->SetChild(&a);
  Pump();
  // Scribble directly on the window, then damage only a small area; the
  // repaint must not repaint pixels outside the damage.
  im_->window()->GetGraphic()->FillRect(Rect{0, 0, 200, 100}, kGray);
  a.PostUpdate(Rect{0, 0, 10, 10});
  Pump();
  EXPECT_EQ(im_->window()->Display().GetPixel(5, 5), kBlack);     // Repainted.
  EXPECT_EQ(im_->window()->Display().GetPixel(50, 50), kGray);    // Untouched.
}

TEST_F(BaseTest, DataChangeSchedulesRepaintViaObserver) {
  // Local class: inherits GetClassInfo from DataObject (no registration).
  class CounterData : public DataObject {
   public:
    void Bump() {
      ++value;
      Change change;
      change.kind = Change::Kind::kModified;
      NotifyObservers(change);
    }
    void WriteBody(DataStreamWriter&) const override {}
    bool ReadBody(DataStreamReader& r, ReadContext&) override {
      return ConsumeUntilEndData(r);
    }
    int value = 0;
  };
  static CounterData data;
  BlockView a;
  BlockView b;
  SplitView split;
  split.AddChild(&a);
  split.AddChild(&b);
  im_->SetChild(&split);
  a.SetDataObject(&data);
  b.SetDataObject(&data);
  Pump();
  a.paints = 0;
  b.paints = 0;
  data.Bump();
  // Both views of the one data object repaint in the same cycle (§2).
  Pump();
  EXPECT_EQ(a.paints, 1);
  EXPECT_EQ(b.paints, 1);
  a.SetDataObject(nullptr);
  b.SetDataObject(nullptr);
}

TEST_F(BaseTest, ExposeEventDamagesRegion) {
  BlockView a(kBlack);
  im_->SetChild(&a);
  Pump();
  a.paints = 0;
  im_->window()->Inject(InputEvent::Exposure(Rect{10, 10, 20, 20}));
  Pump();
  EXPECT_EQ(a.paints, 1);
}

// ---- Focus, keymaps, menus -----------------------------------------------------------

TEST_F(BaseTest, ClickSetsFocusAndKeysFollow) {
  SplitView split;
  BlockView left;
  BlockView right;
  left.accepts_keys = true;
  right.accepts_keys = true;
  left.wants_focus_on_click = true;
  right.wants_focus_on_click = true;
  split.AddChild(&left);
  split.AddChild(&right);
  im_->SetChild(&split);
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, Point{10, 10}));
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseUp, Point{10, 10}));
  im_->window()->Inject(InputEvent::KeyPress('x'));
  Pump();
  EXPECT_EQ(im_->input_focus(), &left);
  EXPECT_EQ(left.typed, "x");
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, Point{150, 10}));
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseUp, Point{150, 10}));
  im_->window()->Inject(InputEvent::KeyPress('y'));
  Pump();
  EXPECT_EQ(right.typed, "y");
  EXPECT_EQ(left.typed, "x");
  EXPECT_FALSE(left.has_input_focus());
  EXPECT_TRUE(right.has_input_focus());
}

TEST_F(BaseTest, KeymapSequenceInvokesProc) {
  static std::string invoked;
  ProcTable::Instance().Register("test-save", [](View*, long rock) {
    invoked = "saved:" + std::to_string(rock);
  });
  BlockView a;
  a.accepts_keys = true;
  a.keymap.Bind(std::string{Ctl('x')} + std::string{Ctl('s')}, "test-save", 42);
  im_->SetChild(&a);
  im_->SetInputFocus(&a);
  im_->window()->Inject(InputEvent::KeyPress(Ctl('x')));
  im_->window()->Inject(InputEvent::KeyPress(Ctl('s')));
  Pump();
  EXPECT_EQ(invoked, "saved:42");
  EXPECT_TRUE(a.typed.empty());  // Sequence consumed, not self-inserted.
}

TEST_F(BaseTest, UnboundKeyFallsBackToHandleKey) {
  BlockView a;
  a.accepts_keys = true;
  a.keymap.Bind(std::string{Ctl('x')} + "q", "no-such-proc");
  im_->SetChild(&a);
  im_->SetInputFocus(&a);
  im_->window()->Inject(InputEvent::KeyPress('h'));
  im_->window()->Inject(InputEvent::KeyPress('i'));
  Pump();
  EXPECT_EQ(a.typed, "hi");
}

TEST_F(BaseTest, ChildKeymapShadowsParent) {
  static std::string invoked;
  ProcTable::Instance().Register("test-inner", [](View*, long) { invoked = "inner"; });
  ProcTable::Instance().Register("test-outer", [](View*, long) { invoked = "outer"; });
  BlockView parent;
  BlockView child;
  parent.keymap.Bind("k", "test-outer");
  child.keymap.Bind("k", "test-inner");
  parent.AddChild(&child);
  im_->SetChild(&parent);
  parent.Layout();
  im_->SetInputFocus(&child);
  invoked.clear();
  im_->window()->Inject(InputEvent::KeyPress('k'));
  Pump();
  EXPECT_EQ(invoked, "inner");
}

TEST_F(BaseTest, MenusComposeAlongFocusPathInnermostFirst) {
  static std::string invoked;
  ProcTable::Instance().Register("test-menu-child", [](View*, long) { invoked = "child"; });
  ProcTable::Instance().Register("test-menu-parent", [](View*, long) { invoked = "parent"; });
  SplitView split;
  BlockView child;
  child.menu_items = {{"Edit~Cut", "test-menu-child"}, {"File~Save", "test-menu-child"}};
  BlockView parent_proxy;  // Stands in for split contributing items.
  parent_proxy.menu_items = {{"File~Save", "test-menu-parent"}, {"File~Quit", "test-menu-parent"}};
  parent_proxy.AddChild(&child);
  split.AddChild(&parent_proxy);
  im_->SetChild(&split);
  im_->SetInputFocus(&child);
  MenuList menus = im_->ComposeMenus();
  // Child's File~Save shadows the parent's.
  const MenuItem* save = menus.Find("File~Save");
  ASSERT_NE(save, nullptr);
  EXPECT_EQ(save->proc_name, "test-menu-child");
  ASSERT_NE(menus.Find("File~Quit"), nullptr);
  // Menu events route through the composed list.
  invoked.clear();
  im_->window()->Inject(InputEvent::MenuChoice("Edit~Cut"));
  Pump();
  EXPECT_EQ(invoked, "child");
  invoked.clear();
  im_->window()->Inject(InputEvent::MenuChoice("File~Quit"));
  Pump();
  EXPECT_EQ(invoked, "parent");
}

TEST_F(BaseTest, CursorArbitrationAsksParentFirst) {
  class DividerCursorParent : public SplitView {
   public:
    CursorShape CursorAt(Point local) override {
      int center = bounds().width / 2;
      if (local.x >= center - 5 && local.x < center + 5) {
        return CursorShape::kHorizontalBars;
      }
      return SplitView::CursorAt(local);
    }
  };
  static DividerCursorParent parent;
  static BlockView left;
  static BlockView right;
  left.SetPreferredCursor(CursorShape::kIBeam);
  right.SetPreferredCursor(CursorShape::kCrosshair);
  if (parent.children().empty()) {
    parent.AddChild(&left);
    parent.AddChild(&right);
  }
  im_->SetChild(&parent);
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseMove, Point{20, 50}));
  Pump();
  EXPECT_EQ(im_->current_cursor(), CursorShape::kIBeam);
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseMove, Point{98, 50}));
  Pump();
  EXPECT_EQ(im_->current_cursor(), CursorShape::kHorizontalBars);
  im_->window()->Inject(InputEvent::MouseAt(EventType::kMouseMove, Point{150, 50}));
  Pump();
  EXPECT_EQ(im_->current_cursor(), CursorShape::kCrosshair);
}

// ---- Data objects & documents ----------------------------------------------------------

// A minimal concrete data object: a named bag of text.
class NoteData : public DataObject {
  ATK_DECLARE_CLASS(NoteData)

 public:
  void WriteBody(DataStreamWriter& w) const override { w.WriteText(text); }
  bool ReadBody(DataStreamReader& r, ReadContext&) override {
    using K = DataStreamReader::Token::Kind;
    text.clear();
    while (true) {
      DataStreamReader::Token t = r.Next();
      if (t.kind == K::kEndData) {
        return true;
      }
      if (t.kind == K::kEof) {
        return false;
      }
      if (t.kind == K::kText) {
        text += t.text;
      }
    }
  }
  std::string text;
};
ATK_DEFINE_CLASS(NoteData, DataObject, "note")

class DataIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static bool declared = [] {
      ModuleSpec spec;
      spec.name = "test-note";
      spec.provides = {"note"};
      spec.init = [] { ClassRegistry::Instance().Register(NoteData::StaticClassInfo()); };
      return Loader::Instance().DeclareModule(std::move(spec));
    }();
    ASSERT_TRUE(declared);
  }
};

TEST_F(DataIoTest, DocumentRoundTrip) {
  NoteData note;
  note.text = "hello\nworld\n";
  std::string doc = WriteDocument(note);
  ReadContext ctx;
  std::unique_ptr<DataObject> read = ReadDocument(doc, &ctx);
  ASSERT_NE(read, nullptr);
  EXPECT_TRUE(ctx.ok());
  NoteData* back = ObjectCast<NoteData>(read.get());
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->text, "hello\nworld\n");
}

TEST_F(DataIoTest, ReadLoadsModuleOnDemand) {
  Loader::Instance().UnloadAllForTest();
  EXPECT_FALSE(ClassRegistry::Instance().IsRegistered("note"));
  std::unique_ptr<DataObject> read =
      ReadDocument("\\begindata{note,1}\nondemand\\enddata{note,1}\n");
  ASSERT_NE(read, nullptr);
  EXPECT_TRUE(Loader::Instance().IsLoaded("test-note"));
  NoteData* note = ObjectCast<NoteData>(read.get());
  ASSERT_NE(note, nullptr);
  EXPECT_EQ(note->text, "ondemand");
}

TEST_F(DataIoTest, UnknownTypeSurvivesRoundTrip) {
  std::string doc =
      "\\begindata{music,3}\nCDEFGAB half-note{q}\n\\enddata{music,3}\n";
  ReadContext ctx;
  std::unique_ptr<DataObject> read = ReadDocument(doc, &ctx);
  ASSERT_NE(read, nullptr);
  UnknownObject* unknown = ObjectCast<UnknownObject>(read.get());
  ASSERT_NE(unknown, nullptr);
  EXPECT_EQ(unknown->DataTypeName(), "music");
  // Re-written output preserves the original bytes (modulo the id, which is
  // reassigned per stream).
  std::string rewritten = WriteDocument(*read);
  EXPECT_NE(rewritten.find("\\begindata{music,"), std::string::npos);
  EXPECT_NE(rewritten.find("CDEFGAB half-note{q}"), std::string::npos);
}

TEST_F(DataIoTest, TruncatedDocumentReportsError) {
  ReadContext ctx;
  std::unique_ptr<DataObject> read =
      ReadDocument("\\begindata{note,1}\npartial text", &ctx);
  ASSERT_NE(read, nullptr);  // Best-effort parse survives.
  EXPECT_FALSE(ctx.ok());
}

// ---- Printing ---------------------------------------------------------------------------

TEST_F(BaseTest, PrintViewRendersOntoPage) {
  BlockView a(kBlack);
  PrintJob job(120, 80, 8);
  PrintView(a, job);
  EXPECT_EQ(job.page_count(), 1);
  // The view filled the printable area.
  EXPECT_EQ(job.page(0).GetPixel(60, 40), kBlack);
  EXPECT_EQ(job.page(0).GetPixel(2, 2), kWhite);  // Margin.
}

// ---- runapp ------------------------------------------------------------------------------

class HelloApp : public Application {
  ATK_DECLARE_CLASS(HelloApp)

 public:
  std::unique_ptr<InteractionManager> Start(WindowSystem& ws,
                                            const std::vector<std::string>& args) override {
    auto im = InteractionManager::Create(ws, 100, 50, args.empty() ? "" : args[0]);
    view_ = std::make_unique<BlockView>(kBlack);
    im->SetChild(view_.get());
    return im;
  }

 private:
  std::unique_ptr<BlockView> view_;
};
ATK_DEFINE_CLASS(HelloApp, Application, "helloapp")

TEST_F(BaseTest, RunAppLoadsModuleAndStarts) {
  static bool declared = [] {
    ModuleSpec spec;
    spec.name = "app-hello";
    spec.provides = {"helloapp"};
    spec.text_bytes = 20000;
    spec.init = [] { ClassRegistry::Instance().Register(HelloApp::StaticClassInfo()); };
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  ASSERT_TRUE(declared);
  std::unique_ptr<InteractionManager> im = RunApp("hello", *ws_);
  ASSERT_NE(im, nullptr);
  EXPECT_TRUE(Loader::Instance().IsLoaded("app-hello"));
  EXPECT_EQ(im->window()->title(), "hello");
  im->RunOnce();
  EXPECT_EQ(im->window()->Display().GetPixel(50, 25), kBlack);
  EXPECT_EQ(RunApp("no-such-app", *ws_), nullptr);
}

}  // namespace
}  // namespace atk
