// Unit tests for the §5 external representation: nested markers, escaping,
// skip-without-parse, truncation recovery, and the 7-bit/80-column posture.

#include <gtest/gtest.h>

#include <sstream>

#include "src/datastream/reader.h"
#include "src/datastream/writer.h"

namespace atk {
namespace {

using Kind = DataStreamReader::Token::Kind;

std::string WriteNestedExample() {
  // The paper's §5 example: a table embedded in text.
  std::ostringstream out;
  DataStreamWriter w(out);
  w.BeginData("text");
  w.WriteText("text data ...\n");
  int64_t table_id = w.BeginData("table");
  w.WriteText("the table data goes here ...\n");
  w.EndData();
  w.WriteText("more text data ...\n");
  w.WriteViewReference("spread", table_id);
  w.WriteText("rest of text data ...\n");
  w.EndData();
  return out.str();
}

TEST(Writer, ProducesNestedMarkers) {
  std::string stream = WriteNestedExample();
  EXPECT_NE(stream.find("\\begindata{text,1}"), std::string::npos);
  EXPECT_NE(stream.find("\\begindata{table,2}"), std::string::npos);
  EXPECT_NE(stream.find("\\enddata{table,2}"), std::string::npos);
  EXPECT_NE(stream.find("\\view{spread,2}"), std::string::npos);
  EXPECT_NE(stream.find("\\enddata{text,1}"), std::string::npos);
  // Proper nesting: table's end before text's end.
  EXPECT_LT(stream.find("\\enddata{table,2}"), stream.find("\\enddata{text,1}"));
}

TEST(Writer, TracksDepthAndBalance) {
  std::ostringstream out;
  DataStreamWriter w(out);
  EXPECT_TRUE(w.balanced());
  w.BeginData("text");
  w.BeginData("table");
  EXPECT_EQ(w.depth(), 2);
  EXPECT_EQ(w.max_depth(), 2);
  w.EndData();
  w.EndData();
  EXPECT_TRUE(w.balanced());
}

TEST(Writer, EscapesBackslashes) {
  std::ostringstream out;
  DataStreamWriter w(out);
  w.WriteText("a\\b");
  EXPECT_EQ(out.str(), "a\\\\b");
}

TEST(Writer, HexEscapesNonAscii) {
  std::ostringstream out;
  DataStreamWriter w(out);
  std::string payload = "x";
  payload += static_cast<char>(0xE9);
  w.WriteText(payload);
  EXPECT_EQ(out.str(), "x\\x{e9}");
  EXPECT_TRUE(w.all_seven_bit());
}

TEST(Writer, TracksMaxLineLength) {
  std::ostringstream out;
  DataStreamWriter w(out);
  w.WriteLine("short");
  w.WriteLine(std::string(79, 'a'));
  EXPECT_EQ(w.max_line_length(), 79);
}

TEST(Reader, RoundTripsTheNestedExample) {
  DataStreamReader r(WriteNestedExample());
  DataStreamReader::Token t = r.Next();
  ASSERT_EQ(t.kind, Kind::kBeginData);
  EXPECT_EQ(t.type, "text");
  EXPECT_EQ(t.id, 1);
  t = r.Next();
  ASSERT_EQ(t.kind, Kind::kText);
  EXPECT_EQ(t.text, "text data ...\n");
  t = r.Next();
  ASSERT_EQ(t.kind, Kind::kBeginData);
  EXPECT_EQ(t.type, "table");
  EXPECT_EQ(r.depth(), 2);
  t = r.Next();
  ASSERT_EQ(t.kind, Kind::kText);
  EXPECT_EQ(t.text, "the table data goes here ...\n");
  t = r.Next();
  ASSERT_EQ(t.kind, Kind::kEndData);
  EXPECT_EQ(t.type, "table");
  t = r.Next();
  ASSERT_EQ(t.kind, Kind::kText);
  EXPECT_EQ(t.text, "more text data ...\n");
  t = r.Next();
  ASSERT_EQ(t.kind, Kind::kViewRef);
  EXPECT_EQ(t.type, "spread");
  EXPECT_EQ(t.id, 2);
  t = r.Next();
  ASSERT_EQ(t.kind, Kind::kText);
  EXPECT_EQ(t.text, "rest of text data ...\n");
  t = r.Next();
  ASSERT_EQ(t.kind, Kind::kEndData);
  EXPECT_EQ(t.type, "text");
  EXPECT_EQ(r.Next().kind, Kind::kEof);
  EXPECT_FALSE(r.truncated());
  EXPECT_FALSE(r.saw_malformed());
}

TEST(Reader, UnescapesBackslashAndHex) {
  DataStreamReader r("a\\\\b\\x{41}c");
  DataStreamReader::Token t = r.Next();
  ASSERT_EQ(t.kind, Kind::kText);
  EXPECT_EQ(t.text, "a\\bAc");
}

TEST(Reader, PayloadTextRoundTripsByteExact) {
  // Arbitrary payload (with backslashes, braces, high bytes) written through
  // WriteText must come back identical.
  std::string payload = "line1\nline\\two{with}braces\t";
  payload += static_cast<char>(0x07);
  payload += static_cast<char>(0xFE);
  std::ostringstream out;
  DataStreamWriter w(out);
  w.BeginData("text");
  w.WriteText(payload);
  w.EndData();

  DataStreamReader r(out.str());
  ASSERT_EQ(r.Next().kind, Kind::kBeginData);
  DataStreamReader::Token t = r.Next();
  ASSERT_EQ(t.kind, Kind::kText);
  EXPECT_EQ(t.text, payload);
  EXPECT_EQ(r.Next().kind, Kind::kEndData);
}

TEST(Reader, SkipObjectWithoutParsing) {
  DataStreamReader r(WriteNestedExample());
  DataStreamReader::Token t = r.Next();
  ASSERT_EQ(t.kind, Kind::kBeginData);
  std::string_view raw;
  EXPECT_TRUE(r.SkipObject(t.type, t.id, &raw));
  // The raw body contains the nested table markers verbatim.
  EXPECT_NE(raw.find("\\begindata{table,2}"), std::string::npos);
  EXPECT_NE(raw.find("\\enddata{table,2}"), std::string::npos);
  EXPECT_EQ(r.Next().kind, Kind::kEof);
  EXPECT_FALSE(r.truncated());
}

TEST(Reader, SkipInnerObjectOnly) {
  DataStreamReader r(WriteNestedExample());
  ASSERT_EQ(r.Next().kind, Kind::kBeginData);  // text
  ASSERT_EQ(r.Next().kind, Kind::kText);
  DataStreamReader::Token t = r.Next();
  ASSERT_EQ(t.kind, Kind::kBeginData);  // table
  EXPECT_TRUE(r.SkipObject(t.type, t.id));
  // We resume inside the text object.
  t = r.Next();
  ASSERT_EQ(t.kind, Kind::kText);
  EXPECT_EQ(t.text, "more text data ...\n");
}

TEST(Reader, SkippedRawBodyReEmitsVerbatim) {
  std::string original = WriteNestedExample();
  DataStreamReader r(original);
  DataStreamReader::Token t = r.Next();
  std::string_view raw;
  ASSERT_TRUE(r.SkipObject(t.type, t.id, &raw));
  // Re-emit through a writer as an unknown object.
  std::ostringstream out;
  DataStreamWriter w(out);
  w.BeginDataWithId("text", 1);
  w.WriteRaw(raw);
  w.EndData();
  EXPECT_EQ(out.str(), original);
}

TEST(Reader, TruncatedStreamIsDetectedAndParseSurvives) {
  std::string stream = WriteNestedExample();
  stream.resize(stream.size() / 2);  // Chop mid-way.
  DataStreamReader r(std::move(stream));
  int begin_count = 0;
  int text_chars = 0;
  while (true) {
    DataStreamReader::Token t = r.Next();
    if (t.kind == Kind::kEof) {
      break;
    }
    if (t.kind == Kind::kBeginData) {
      ++begin_count;
    }
    if (t.kind == Kind::kText) {
      text_chars += static_cast<int>(t.text.size());
    }
  }
  EXPECT_TRUE(r.truncated());
  EXPECT_GE(begin_count, 1);
  EXPECT_GT(text_chars, 0);
}

TEST(Reader, TruncatedSkipReportsFailure) {
  std::string stream = "\\begindata{blob,5}\nsome data with no end";
  DataStreamReader r(std::move(stream));
  DataStreamReader::Token t = r.Next();
  ASSERT_EQ(t.kind, Kind::kBeginData);
  std::string_view raw;
  EXPECT_FALSE(r.SkipObject("blob", 5, &raw));
  EXPECT_TRUE(r.truncated());
  EXPECT_EQ(raw, "some data with no end");
}

TEST(Reader, MismatchedEndDataIsRecovered) {
  std::string stream = "\\begindata{text,1}\nabc\\enddata{table,9}\n";
  DataStreamReader r(std::move(stream));
  EXPECT_EQ(r.Next().kind, Kind::kBeginData);
  EXPECT_EQ(r.Next().kind, Kind::kText);
  EXPECT_EQ(r.Next().kind, Kind::kEndData);
  EXPECT_TRUE(r.saw_malformed());
}

TEST(Reader, LoneBackslashIsLiteralText) {
  DataStreamReader r("a\\ b");
  DataStreamReader::Token t = r.Next();
  ASSERT_EQ(t.kind, Kind::kText);
  EXPECT_EQ(t.text, "a\\ b");
  EXPECT_TRUE(r.saw_malformed());
}

TEST(Reader, UnknownDirectiveSurfacesNameAndArgs) {
  DataStreamReader r("\\textstyle{bold,3}rest");
  DataStreamReader::Token t = r.Next();
  ASSERT_EQ(t.kind, Kind::kDirective);
  EXPECT_EQ(t.type, "textstyle");
  EXPECT_EQ(t.text, "bold,3");
  t = r.Next();
  ASSERT_EQ(t.kind, Kind::kText);
  EXPECT_EQ(t.text, "rest");
}

TEST(Reader, PeekDoesNotConsume) {
  DataStreamReader r("hello");
  EXPECT_EQ(r.Peek().kind, Kind::kText);
  EXPECT_EQ(r.Peek().text, "hello");
  DataStreamReader::Token t = r.Next();
  EXPECT_EQ(t.text, "hello");
  EXPECT_EQ(r.Next().kind, Kind::kEof);
}

TEST(Reader, SkipObjectAfterPeekRewindsOverPeekedToken) {
  // Pre-PR-5 footgun: Peek lexed a token past the begindata marker, and
  // SkipObject silently dropped it — the peeked bytes vanished from the
  // skipped body.  The reader now rewinds, so the body is complete.
  std::string original = WriteNestedExample();
  DataStreamReader r(original);
  DataStreamReader::Token t = r.Next();
  ASSERT_EQ(t.kind, Kind::kBeginData);
  // Peek into the object body before deciding to skip it.
  EXPECT_EQ(r.Peek().kind, Kind::kText);
  std::string_view raw;
  ASSERT_TRUE(r.SkipObject(t.type, t.id, &raw));
  // The peeked text is part of the skipped body, from its first byte.
  EXPECT_EQ(raw.substr(0, 13), "text data ...");
  std::ostringstream out;
  DataStreamWriter w(out);
  w.BeginDataWithId("text", 1);
  w.WriteRaw(raw);
  w.EndData();
  EXPECT_EQ(out.str(), original);
  EXPECT_EQ(r.Next().kind, Kind::kEof);
}

TEST(Reader, SkipObjectAfterPeekedEndDataRewinds) {
  // Peeking the object's own \enddata pops the marker stack; the rewind must
  // push the marker back so SkipObject still finds the closing marker.
  DataStreamReader r("\\begindata{text,1}\n\\textstyle{bold,0,1}\\enddata{text,1}\nafter");
  DataStreamReader::Token t = r.Next();
  ASSERT_EQ(t.kind, Kind::kBeginData);
  ASSERT_EQ(r.Next().kind, Kind::kDirective);
  EXPECT_EQ(r.Peek().kind, Kind::kEndData);
  EXPECT_EQ(r.depth(), 0);  // The peeked \enddata popped the marker...
  ASSERT_TRUE(r.SkipObject("text", 1));  // ...and the rewind restored it.
  DataStreamReader::Token after = r.Next();
  ASSERT_EQ(after.kind, Kind::kText);
  EXPECT_EQ(after.text, "after");
  EXPECT_FALSE(r.truncated());
  EXPECT_TRUE(r.diagnostics().empty());
}

TEST(Reader, EscapeFreeInputTokenizesWithoutScratchCopies) {
  // The zero-copy invariant: tokens over escape-free input are views into
  // the pinned buffer; the unescape arena stays untouched.
  std::string stream = WriteNestedExample();
  const char* base = stream.data();
  DataStreamReader r(std::move(stream));
  size_t text_bytes = 0;
  while (true) {
    DataStreamReader::Token t = r.Next();
    if (t.kind == Kind::kEof) {
      break;
    }
    if (t.kind == Kind::kText) {
      text_bytes += t.text.size();
      // The view aliases the pinned input buffer itself.
      EXPECT_GE(t.text.data(), base);
      EXPECT_LT(t.text.data(), base + r.input_size());
    }
  }
  EXPECT_GT(text_bytes, 0u);
  EXPECT_EQ(r.scratch_bytes(), 0u);
}

TEST(Reader, IstreamConstructorReadsToEof) {
  std::string original = WriteNestedExample();
  std::istringstream in(original);
  DataStreamReader r(in);
  EXPECT_EQ(r.input_size(), original.size());
  ASSERT_EQ(r.Next().kind, Kind::kBeginData);
  std::string_view raw;
  ASSERT_TRUE(r.SkipObject("text", 1, &raw));
  EXPECT_FALSE(r.truncated());
}

TEST(Reader, EmbeddedSubReaderReportsDocumentOffsets) {
  // A sub-reader over a captured object reports diagnostics in the
  // enclosing document's coordinates.
  std::string doc = "\\begindata{text,1}\n\\begindata{blob,2}\nx\\ y\\enddata{blob,2}\n\\enddata{text,1}\n";
  DataStreamReader r(doc);
  ASSERT_EQ(r.Next().kind, Kind::kBeginData);
  DataStreamReader::Token child = r.Next();
  ASSERT_EQ(child.kind, Kind::kBeginData);
  DataStreamReader::RawCapture capture;
  ASSERT_TRUE(r.SkipObject("blob", 2, &capture));
  EXPECT_TRUE(capture.complete);
  EXPECT_EQ(capture.offset, doc.find("x\\ y"));

  DataStreamReader sub = DataStreamReader::ForEmbeddedObject(capture, "blob", 2);
  DataStreamReader::Token t = sub.Next();
  ASSERT_EQ(t.kind, Kind::kText);
  EXPECT_EQ(t.text, "x\\ y");
  EXPECT_EQ(sub.Next().kind, Kind::kEndData);
  // The lone-backslash diagnostic points at the '\' in the whole document.
  ASSERT_EQ(sub.diagnostics().size(), 1u);
  EXPECT_EQ(sub.diagnostics()[0].offset, doc.find("\\ y"));
}

TEST(Reader, DeeplyNestedStreamsBalance) {
  std::ostringstream out;
  DataStreamWriter w(out);
  constexpr int kDepth = 40;
  for (int i = 0; i < kDepth; ++i) {
    w.BeginData("text");
    w.WriteText("level\n");
  }
  for (int i = 0; i < kDepth; ++i) {
    w.EndData();
  }
  ASSERT_TRUE(w.balanced());
  DataStreamReader r(out.str());
  int max_depth = 0;
  while (true) {
    DataStreamReader::Token t = r.Next();
    if (t.kind == Kind::kEof) {
      break;
    }
    max_depth = std::max(max_depth, r.depth());
  }
  EXPECT_EQ(max_depth, kDepth);
  EXPECT_FALSE(r.truncated());
}

TEST(Reader, EscapedBackslashCannotFakeAMarker) {
  // "\\begindata{x,1}" is a literal backslash followed by plain text, not a
  // marker; SkipObject must not be confused by it.
  std::ostringstream out;
  DataStreamWriter w(out);
  w.BeginData("text");
  w.WriteText("\\begindata{x,1} this is payload, not a marker\n");
  w.EndData();
  DataStreamReader r(out.str());
  DataStreamReader::Token t = r.Next();
  ASSERT_EQ(t.kind, Kind::kBeginData);
  std::string_view raw;
  EXPECT_TRUE(r.SkipObject("text", t.id, &raw));
  EXPECT_EQ(r.Next().kind, Kind::kEof);
  EXPECT_FALSE(r.truncated());
}

}  // namespace
}  // namespace atk
