// Observability: spans, metrics, snapshots, and the `trace` datastream
// component (DESIGN.md §8).
//
// Ordering note: EnvToggle must run first — InitFromEnv reads the
// environment exactly once per process, and later tests construct
// InteractionManagers that call it.

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/standard_modules.h"
#include "src/base/interaction_manager.h"
#include "src/class_system/loader.h"
#include "src/components/table/chart.h"
#include "src/datastream/reader.h"
#include "src/observability/observability.h"
#include "src/observability/trace_component.h"
#include "src/observability/trace_export.h"
#include "src/robustness/fault_injector.h"
#include "src/robustness/salvage.h"
#include "src/wm/window_system.h"
#include "tests/test_json.h"

namespace atk {
namespace {

using observability::Counter;
using observability::Histogram;
using observability::MetricsRegistry;
using observability::ScopedSpan;
using observability::SpanRecord;
using observability::Tracer;
using observability::TraceSnapshot;

uint64_t SpanEnd(const SpanRecord& s) { return s.start_ns + s.duration_ns; }

// The strict JSON parser lives in tests/test_json.h (shared with the
// scenario-suite tests, which validate every bench's metric lines with it).
using testjson::JsonValue;
using testjson::ParseJson;

// Structural validation of a multi-track export: every slice's pid is backed
// by a process_name metadata event and its (pid, tid) by a thread_name one,
// and flow events pair up — per flow id exactly one "s" start and one "f"
// finish (bound to the enclosing slice, bp:"e"), "t" steps in between, with
// non-decreasing timestamps.  Returns the number of distinct flow ids so
// callers can assert how many arrows the viewer will draw.
size_t ValidateMultiTrackExport(const JsonValue& root) {
  const JsonValue* events = root.Get("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    ADD_FAILURE() << "traceEvents missing or not an array";
    return 0;
  }
  std::map<double, std::string> process_names;          // pid -> name
  std::map<std::pair<double, double>, bool> thread_names;  // (pid, tid)
  struct FlowPoint {
    std::string phase;
    double ts = 0.0;
    bool bound_to_enclosing = false;
  };
  std::map<double, std::vector<FlowPoint>> flows;  // flow id -> points in order
  for (const JsonValue& event : events->items) {
    const JsonValue* ph = event.Get("ph");
    const JsonValue* name = event.Get("name");
    if (ph == nullptr || name == nullptr) {
      ADD_FAILURE() << "event without ph/name";
      return 0;
    }
    if (ph->str == "M") {
      const JsonValue* pid = event.Get("pid");
      const JsonValue* args = event.Get("args");
      if (pid == nullptr || args == nullptr || args->Get("name") == nullptr) {
        ADD_FAILURE() << "metadata event without pid/args.name";
        continue;
      }
      if (name->str == "process_name") {
        process_names[pid->number] = args->Get("name")->str;
      } else if (name->str == "thread_name") {
        const JsonValue* tid = event.Get("tid");
        if (tid == nullptr) {
          ADD_FAILURE() << "thread_name without tid";
          continue;
        }
        thread_names[{pid->number, tid->number}] = true;
      }
    }
  }
  size_t slices = 0;
  for (const JsonValue& event : events->items) {
    const JsonValue* ph = event.Get("ph");
    if (ph->str == "X") {
      ++slices;
      const JsonValue* pid = event.Get("pid");
      const JsonValue* tid = event.Get("tid");
      if (pid == nullptr || tid == nullptr) {
        ADD_FAILURE() << "slice without pid/tid";
        continue;
      }
      EXPECT_GE(pid->number, 1.0) << "pids are 1-based (track id + 1)";
      EXPECT_TRUE(process_names.count(pid->number))
          << "slice pid " << pid->number << " has no process_name metadata";
      EXPECT_TRUE(thread_names.count({pid->number, tid->number}))
          << "slice (pid,tid) has no thread_name metadata";
    } else if (ph->str == "s" || ph->str == "t" || ph->str == "f") {
      const JsonValue* id = event.Get("id");
      const JsonValue* ts = event.Get("ts");
      const JsonValue* pid = event.Get("pid");
      const JsonValue* tid = event.Get("tid");
      if (id == nullptr || ts == nullptr || pid == nullptr || tid == nullptr) {
        ADD_FAILURE() << "flow event without id/ts/pid/tid";
        continue;
      }
      EXPECT_TRUE(process_names.count(pid->number))
          << "flow point pid " << pid->number << " has no process_name metadata";
      const JsonValue* bp = event.Get("bp");
      flows[id->number].push_back(
          FlowPoint{ph->str, ts->number, bp != nullptr && bp->str == "e"});
    }
  }
  (void)slices;
  for (const auto& [id, points] : flows) {
    if (points.size() < 2) {
      ADD_FAILURE() << "flow " << id << " has fewer than two points";
      continue;
    }
    for (size_t i = 0; i < points.size(); ++i) {
      const char* want = i == 0 ? "s" : (i + 1 == points.size() ? "f" : "t");
      EXPECT_EQ(points[i].phase, want) << "flow " << id << " point " << i;
      if (i > 0) {
        EXPECT_GE(points[i].ts, points[i - 1].ts) << "flow " << id << " point " << i;
      }
    }
    EXPECT_TRUE(points.back().bound_to_enclosing)
        << "flow " << id << " finish must bind to the enclosing slice (bp:\"e\")";
  }
  return flows.size();
}

TEST(Observability, EnvToggleEnablesTracingAndCapacity) {
  ASSERT_FALSE(observability::Enabled()) << "tracing must start disabled";
  setenv("ATK_TRACE", "1", 1);
  setenv("ATK_TRACE_CAPACITY", "8192", 1);
  observability::InitFromEnv();
  EXPECT_TRUE(observability::Enabled());
  EXPECT_EQ(Tracer::Instance().capacity(), 8192u);
  // Disable again so the atexit dump stays quiet and later tests control
  // the tracer themselves.
  Tracer::Instance().SetEnabled(false);
  EXPECT_FALSE(observability::Enabled());
}

TEST(Observability, DisabledTracerFastPath) {
  static_assert(std::is_nothrow_constructible_v<ScopedSpan, std::string_view>,
                "disabled-path ctor must be noexcept");
  static_assert(sizeof(ScopedSpan) <= 64, "ScopedSpan must stay register/cache friendly");
  static_assert(!std::is_copy_constructible_v<ScopedSpan>);
  static_assert(!std::is_copy_assignable_v<ScopedSpan>);

  Tracer& tracer = Tracer::Instance();
  tracer.SetEnabled(false);
  tracer.Clear();
  uint64_t before = tracer.recorded();
  for (int i = 0; i < 1000000; ++i) {
    ScopedSpan span("never.recorded.span");
  }
  EXPECT_EQ(tracer.recorded(), before) << "disabled spans must not record";
  EXPECT_TRUE(tracer.Collect().empty());
}

TEST(Observability, SpanNestingConcurrentThreads) {
  constexpr int kThreads = 4;
  constexpr int kReps = 50;
  Tracer& tracer = Tracer::Instance();
  tracer.SetCapacity(4096);
  tracer.Clear();
  tracer.SetEnabled(true);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kReps; ++i) {
        ScopedSpan outer("nest.level.outer");
        {
          ScopedSpan mid("nest.level.mid");
          { ScopedSpan inner("nest.level.inner"); }
        }
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  tracer.SetEnabled(false);

  std::vector<SpanRecord> spans = tracer.Collect();
  ASSERT_EQ(spans.size(), static_cast<size_t>(kThreads * kReps * 3));

  // Collect() is seq-ordered; spans from different threads interleave, but
  // per thread the completion order is strict: inner, mid, outer per rep.
  std::map<uint32_t, std::vector<SpanRecord>> by_thread;
  for (const SpanRecord& span : spans) {
    by_thread[span.thread].push_back(span);
  }
  ASSERT_EQ(by_thread.size(), static_cast<size_t>(kThreads));
  for (const auto& [thread, list] : by_thread) {
    ASSERT_EQ(list.size(), static_cast<size_t>(kReps * 3));
    for (int i = 0; i < kReps; ++i) {
      const SpanRecord& inner = list[static_cast<size_t>(i) * 3];
      const SpanRecord& mid = list[static_cast<size_t>(i) * 3 + 1];
      const SpanRecord& outer = list[static_cast<size_t>(i) * 3 + 2];
      EXPECT_EQ(inner.name_view(), "nest.level.inner");
      EXPECT_EQ(mid.name_view(), "nest.level.mid");
      EXPECT_EQ(outer.name_view(), "nest.level.outer");
      // Children close before parents: strictly increasing seq.
      EXPECT_LT(inner.seq, mid.seq);
      EXPECT_LT(mid.seq, outer.seq);
      // Depth is per-thread nesting at open.
      EXPECT_EQ(outer.depth, 0);
      EXPECT_EQ(mid.depth, 1);
      EXPECT_EQ(inner.depth, 2);
      // Interval containment: inner ⊆ mid ⊆ outer.
      EXPECT_GE(inner.start_ns, mid.start_ns);
      EXPECT_LE(SpanEnd(inner), SpanEnd(mid));
      EXPECT_GE(mid.start_ns, outer.start_ns);
      EXPECT_LE(SpanEnd(mid), SpanEnd(outer));
    }
  }
}

TEST(Observability, RingBufferDropsOldestKeepsAccounting) {
  Tracer& tracer = Tracer::Instance();
  tracer.SetCapacity(8);
  tracer.Clear();
  tracer.SetEnabled(true);
  for (int i = 0; i < 20; ++i) {
    ScopedSpan span("ring.span.close");
  }
  tracer.SetEnabled(false);
  EXPECT_EQ(tracer.recorded(), 20u);
  EXPECT_EQ(tracer.dropped(), 12u);
  std::vector<SpanRecord> spans = tracer.Collect();
  ASSERT_EQ(spans.size(), 8u);
  // The retained spans are the newest, oldest-first.
  EXPECT_EQ(spans.front().seq, 13u);
  EXPECT_EQ(spans.back().seq, 20u);
  tracer.SetCapacity(Tracer::kDefaultCapacity);
}

TEST(Observability, HistogramPercentileMatchesBruteForce) {
  Histogram hist;
  // Deterministic LCG covering several orders of magnitude.
  uint64_t seed = 0x9e3779b97f4a7c15ull;
  std::vector<uint64_t> values;
  uint64_t expect_sum = 0;
  uint64_t expect_max = 0;
  for (int i = 0; i < 1000; ++i) {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    uint64_t v = (seed >> 33) % 1000000;
    values.push_back(v);
    expect_sum += v;
    expect_max = std::max(expect_max, v);
    hist.Observe(v);
  }
  EXPECT_EQ(hist.count(), 1000u);
  EXPECT_EQ(hist.sum(), expect_sum);
  EXPECT_EQ(hist.max(), expect_max);

  std::vector<uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double p : {0.10, 0.50, 0.90, 0.95, 0.99, 1.00}) {
    uint64_t rank = std::max<uint64_t>(1, static_cast<uint64_t>(p * sorted.size()));
    uint64_t brute = sorted[rank - 1];
    uint64_t approx = hist.Percentile(p);
    // Power-of-two buckets: the true value v satisfies v <= approx < 2v.
    EXPECT_GE(approx, brute) << "p=" << p;
    EXPECT_LT(approx, 2 * brute + 2) << "p=" << p;
  }
  EXPECT_EQ(hist.Percentile(1.0), hist.max());

  hist.Reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.Percentile(0.5), 0u);
}

TEST(Observability, HistogramBucketBounds) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  for (uint64_t v : {1ull, 7ull, 1000ull, 123456789ull}) {
    uint64_t upper = Histogram::BucketUpperBound(Histogram::BucketIndex(v));
    EXPECT_GE(upper, v);
    EXPECT_LT(upper, 2 * v);
  }
}

TEST(Observability, TraceComponentRoundTrip) {
  Tracer& tracer = Tracer::Instance();
  tracer.Clear();
  tracer.SetEnabled(true);
  uint32_t track = tracer.RegisterTrack("session.roundtrip");
  uint64_t flow = observability::NextFlowId();
  {
    ScopedSpan outer("roundtrip.span.outer");
    ScopedSpan inner("roundtrip.span.inner");
  }
  {
    // A span with the full causal annotation: flow id, non-default track,
    // and a free argument — all three must survive the round trip.
    observability::FlowScope flow_scope(flow);
    observability::TrackScope track_scope(track);
    ScopedSpan tagged("roundtrip.span.tagged");
    tagged.set_arg(7);
  }
  tracer.SetEnabled(false);
  MetricsRegistry::Instance().counter("roundtrip.counter.test").Add(42);
  MetricsRegistry::Instance().gauge("roundtrip.gauge.test").Set(-7);
  Histogram& hist = MetricsRegistry::Instance().histogram("roundtrip.histo.test");
  hist.Reset();
  for (uint64_t v : {1ull, 10ull, 100ull, 1000ull}) {
    hist.Observe(v);
  }

  TraceSnapshot original = observability::Snapshot();
  ASSERT_GE(original.spans.size(), 3u);
  ASSERT_GE(original.tracks.size(), 2u) << "track 0 plus the registered session track";
  std::string serialized = observability::SnapshotToDatastream(original);

  // The serialized trace is an ordinary §5 object: it parses cleanly.
  {
    DataStreamReader reader{serialized};
    for (DataStreamReader::Token token = reader.Next();
         token.kind != DataStreamReader::Token::Kind::kEof; token = reader.Next()) {
    }
    EXPECT_TRUE(reader.diagnostics().empty());
  }

  TraceSnapshot back;
  Status status = observability::SnapshotFromDatastream(serialized, &back);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(back.trace_enabled, original.trace_enabled);
  EXPECT_EQ(back.spans_recorded, original.spans_recorded);
  EXPECT_EQ(back.spans_dropped, original.spans_dropped);
  ASSERT_EQ(back.spans.size(), original.spans.size());
  for (size_t i = 0; i < original.spans.size(); ++i) {
    EXPECT_EQ(back.spans[i].name_view(), original.spans[i].name_view());
    EXPECT_EQ(back.spans[i].start_ns, original.spans[i].start_ns);
    EXPECT_EQ(back.spans[i].duration_ns, original.spans[i].duration_ns);
    EXPECT_EQ(back.spans[i].seq, original.spans[i].seq);
    EXPECT_EQ(back.spans[i].thread, original.spans[i].thread);
    EXPECT_EQ(back.spans[i].depth, original.spans[i].depth);
    EXPECT_EQ(back.spans[i].flow, original.spans[i].flow);
    EXPECT_EQ(back.spans[i].track, original.spans[i].track);
    EXPECT_EQ(back.spans[i].arg, original.spans[i].arg);
  }
  EXPECT_EQ(back.tracks, original.tracks);
  // The tagged span really carried its annotations through.
  bool saw_tagged = false;
  for (const SpanRecord& span : back.spans) {
    if (span.name_view() == "roundtrip.span.tagged") {
      saw_tagged = true;
      EXPECT_EQ(span.flow, flow);
      EXPECT_EQ(span.track, track);
      EXPECT_EQ(span.arg, 7u);
    }
  }
  EXPECT_TRUE(saw_tagged);
  ASSERT_EQ(back.counters.size(), original.counters.size());
  for (size_t i = 0; i < original.counters.size(); ++i) {
    EXPECT_EQ(back.counters[i].name, original.counters[i].name);
    EXPECT_EQ(back.counters[i].value, original.counters[i].value);
  }
  ASSERT_EQ(back.gauges.size(), original.gauges.size());
  for (size_t i = 0; i < original.gauges.size(); ++i) {
    EXPECT_EQ(back.gauges[i].name, original.gauges[i].name);
    EXPECT_EQ(back.gauges[i].value, original.gauges[i].value);
  }
  ASSERT_EQ(back.histograms.size(), original.histograms.size());
  for (size_t i = 0; i < original.histograms.size(); ++i) {
    EXPECT_EQ(back.histograms[i].name, original.histograms[i].name);
    EXPECT_EQ(back.histograms[i].count, original.histograms[i].count);
    EXPECT_EQ(back.histograms[i].sum, original.histograms[i].sum);
    EXPECT_EQ(back.histograms[i].max, original.histograms[i].max);
    EXPECT_EQ(back.histograms[i].p50, original.histograms[i].p50);
    EXPECT_EQ(back.histograms[i].p95, original.histograms[i].p95);
    EXPECT_EQ(back.histograms[i].p99, original.histograms[i].p99);
  }

  // And it survives the salvager untouched, like any healthy component.
  SalvageReport report;
  std::string salvaged = DataStreamSalvager().Salvage(serialized, &report);
  EXPECT_EQ(salvaged, serialized);
  EXPECT_TRUE(report.clean);
}

TEST(Observability, SalvageReportMetricsEquivalence) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  registry.ResetAll();
  // Truncated stream with a stray backslash: markers get closed and the
  // lone backslash is escaped.
  std::string damaged = "\\begindata{text,1}\nhello \\ world\n\\begindata{text,2}\nnested\n";
  SalvageReport report;
  std::string repaired = DataStreamSalvager().Salvage(damaged, &report);
  EXPECT_FALSE(report.clean);
  ASSERT_FALSE(repaired.empty());

  // The counters were published from the same report fields — they can
  // never disagree with the text rendering.
  EXPECT_EQ(registry.counter("salvage.run.completed").value(), 1u);
  EXPECT_EQ(registry.counter("salvage.subtree.quarantined").value(),
            static_cast<uint64_t>(report.subtrees_quarantined));
  EXPECT_EQ(registry.counter("salvage.marker.closed").value(),
            static_cast<uint64_t>(report.markers_closed));
  EXPECT_EQ(registry.counter("salvage.backslash.escaped").value(),
            static_cast<uint64_t>(report.backslashes_escaped));
  EXPECT_EQ(registry.counter("salvage.quarantine.dropped_bytes").value(), report.bytes_quarantined);
  EXPECT_EQ(registry.counter("salvage.root.synthesized").value(),
            report.root_synthesized ? 1u : 0u);
  EXPECT_EQ(registry.counter("salvage.stream.resynced").value(),
            static_cast<uint64_t>(report.resyncs()));
  EXPECT_EQ(report.resyncs(), report.markers_closed + report.subtrees_quarantined);
}

TEST(Observability, RingOverwriteCountsDroppedMetricAndWarns) {
  observability::Counter& dropped = MetricsRegistry::Instance().counter("obs.trace.dropped");
  dropped.Reset();
  Tracer& tracer = Tracer::Instance();
  tracer.SetCapacity(4);
  tracer.Clear();
  tracer.SetEnabled(true);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("drop.span.demo");
  }
  tracer.SetEnabled(false);
  // 10 spans through a 4-slot ring: 6 overwrites, counted both ways.
  EXPECT_EQ(tracer.dropped(), 6u);
  EXPECT_EQ(dropped.value(), 6u) << "counter must match the seq-math accounting";

  TraceSnapshot snap = observability::Snapshot();
  EXPECT_EQ(snap.spans_dropped, 6u);
  std::string text = observability::ToText(snap);
  EXPECT_NE(text.find("WARNING: ring buffer wrapped"), std::string::npos);
  EXPECT_NE(text.find("ATK_TRACE_CAPACITY"), std::string::npos);

  tracer.SetCapacity(Tracer::kDefaultCapacity);
  tracer.Clear();
}

TEST(Observability, PerfettoExportIsValidTraceEventJson) {
  Tracer& tracer = Tracer::Instance();
  tracer.SetCapacity(Tracer::kDefaultCapacity);
  tracer.Clear();
  tracer.SetEnabled(true);
  {
    ScopedSpan outer("perfetto.cycle.demo");
    { ScopedSpan inner("perfetto.view.demo"); }
  }
  tracer.SetEnabled(false);
  MetricsRegistry::Instance().counter("perfetto.counter.demo").Add(11);
  Histogram& hist = MetricsRegistry::Instance().histogram("perfetto.histo.demo");
  hist.Reset();
  hist.Observe(64);

  TraceSnapshot snap = observability::Snapshot();
  ASSERT_GE(snap.spans.size(), 2u);
  std::string json = observability::TraceExport::ToPerfettoJson(snap);

  JsonValue root;
  ASSERT_TRUE(ParseJson(json, &root)) << json.substr(0, 200);
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  const JsonValue* unit = root.Get("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->str, "ms");

  const JsonValue* events = root.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);

  size_t complete = 0;
  size_t counter_events = 0;
  size_t metadata = 0;
  double min_ts = -1.0;
  bool saw_demo_counter = false;
  for (const JsonValue& event : events->items) {
    ASSERT_EQ(event.kind, JsonValue::Kind::kObject);
    const JsonValue* ph = event.Get("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_EQ(ph->kind, JsonValue::Kind::kString);
    const JsonValue* name = event.Get("name");
    ASSERT_NE(name, nullptr);
    ASSERT_EQ(name->kind, JsonValue::Kind::kString);
    if (ph->str == "X") {
      ++complete;
      // Complete events carry the full trace-event shape Perfetto needs.
      const JsonValue* ts = event.Get("ts");
      const JsonValue* dur = event.Get("dur");
      const JsonValue* pid = event.Get("pid");
      const JsonValue* tid = event.Get("tid");
      const JsonValue* args = event.Get("args");
      ASSERT_NE(ts, nullptr);
      ASSERT_NE(dur, nullptr);
      ASSERT_NE(pid, nullptr);
      ASSERT_NE(tid, nullptr);
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(ts->kind, JsonValue::Kind::kNumber);
      EXPECT_GE(ts->number, 0.0);
      EXPECT_GE(dur->number, 0.0);
      EXPECT_EQ(pid->number, 1.0);
      ASSERT_EQ(args->kind, JsonValue::Kind::kObject);
      EXPECT_NE(args->Get("seq"), nullptr);
      EXPECT_NE(args->Get("depth"), nullptr);
      min_ts = min_ts < 0.0 ? ts->number : std::min(min_ts, ts->number);
    } else if (ph->str == "C") {
      ++counter_events;
      const JsonValue* args = event.Get("args");
      ASSERT_NE(args, nullptr);
      ASSERT_EQ(args->kind, JsonValue::Kind::kObject);
      EXPECT_FALSE(args->members.empty());
      if (name->str == "perfetto.counter.demo") {
        saw_demo_counter = true;
        const JsonValue* value = args->Get("value");
        ASSERT_NE(value, nullptr);
        EXPECT_GE(value->number, 11.0);
      }
      if (name->str == "perfetto.histo.demo") {
        EXPECT_NE(args->Get("p50"), nullptr);
        EXPECT_NE(args->Get("p95"), nullptr);
        EXPECT_NE(args->Get("p99"), nullptr);
      }
    } else if (ph->str == "M") {
      ++metadata;
    } else {
      FAIL() << "unexpected event phase: " << ph->str;
    }
  }
  EXPECT_EQ(complete, snap.spans.size());
  // Byte-valued gauges (the `_bytes` suffix, PR 9's memory accounts) ride
  // along as Perfetto counter tracks; other gauges stay snapshot-only.
  size_t byte_gauges = 0;
  for (const auto& gauge : snap.gauges) {
    if (gauge.name.ends_with("_bytes")) {
      ++byte_gauges;
    }
  }
  EXPECT_EQ(counter_events,
            snap.counters.size() + snap.histograms.size() + byte_gauges);
  EXPECT_GE(metadata, 2u) << "process_name plus at least one thread_name";
  EXPECT_TRUE(saw_demo_counter);
  // Timestamps are rebased so the earliest span starts at zero.
  EXPECT_EQ(min_ts, 0.0);

  const JsonValue* other = root.Get("otherData");
  ASSERT_NE(other, nullptr);
  const JsonValue* recorded = other->Get("spansRecorded");
  ASSERT_NE(recorded, nullptr);
  EXPECT_EQ(recorded->number, static_cast<double>(snap.spans_recorded));
  EXPECT_NE(other->Get("spansDropped"), nullptr);
}

TEST(Observability, PerfettoMultiTrackFlowExportAndSalvageRoundTrip) {
  Tracer& tracer = Tracer::Instance();
  tracer.SetCapacity(Tracer::kDefaultCapacity);
  tracer.Clear();
  tracer.SetEnabled(true);
  uint32_t server_track = tracer.RegisterTrack("server");
  uint32_t session_track = tracer.RegisterTrack("session.flowdemo");
  uint64_t flow = observability::NextFlowId();
  {
    // One edit's causal path, hand-rolled: origin on the default track,
    // apply on the server track, replica apply on a session track.
    observability::FlowScope flow_scope(flow);
    { ScopedSpan origin("client.edit.submit"); }
    {
      observability::TrackScope track_scope(server_track);
      ScopedSpan apply("server.edit.apply");
    }
    {
      observability::TrackScope track_scope(session_track);
      ScopedSpan replica("client.update.apply");
      replica.set_arg(5);
    }
  }
  { ScopedSpan untagged("perfetto.untagged.demo"); }  // No flow: no arrow.
  tracer.SetEnabled(false);

  TraceSnapshot snap = observability::Snapshot();
  ASSERT_GE(snap.spans.size(), 4u);
  ASSERT_GT(snap.tracks.size(), std::max(server_track, session_track));

  std::string json = observability::TraceExport::ToPerfettoJson(snap);
  JsonValue root;
  ASSERT_TRUE(ParseJson(json, &root)) << json.substr(0, 200);
  EXPECT_EQ(ValidateMultiTrackExport(root), 1u) << "exactly one flow arrow";

  // The three tagged spans landed on three distinct pids, and the flow's
  // start sits on the origin span's track (the default, pid 1).
  const JsonValue* events = root.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  std::map<double, int> flow_pids;
  for (const JsonValue& event : events->items) {
    const JsonValue* ph = event.Get("ph");
    if (ph->str == "s" || ph->str == "t" || ph->str == "f") {
      ++flow_pids[event.Get("pid")->number];
      if (ph->str == "s") {
        EXPECT_EQ(event.Get("pid")->number, 1.0) << "flow starts at the origin span";
      }
    }
  }
  EXPECT_EQ(flow_pids.size(), 3u) << "one flow point per track";

  // Satellite: the multi-track snapshot keeps its tracks and flow ids
  // through datastream serialization, the §5 salvager, and re-export.
  std::string serialized = observability::SnapshotToDatastream(snap);
  SalvageReport report;
  std::string salvaged = DataStreamSalvager().Salvage(serialized, &report);
  EXPECT_TRUE(report.clean);
  TraceSnapshot back;
  Status status = observability::SnapshotFromDatastream(salvaged, &back);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(back.tracks, snap.tracks);
  std::string rejson = observability::TraceExport::ToPerfettoJson(back);
  JsonValue reroot;
  ASSERT_TRUE(ParseJson(rejson, &reroot)) << rejson.substr(0, 200);
  EXPECT_EQ(ValidateMultiTrackExport(reroot), 1u)
      << "flow pairing must survive the salvage round trip";
}

TEST(Observability, PerfettoExportSurvivesFaultInjectedSalvage) {
  Tracer& tracer = Tracer::Instance();
  tracer.SetCapacity(4096);
  tracer.Clear();
  tracer.SetEnabled(true);
  for (int i = 0; i < 40; ++i) {
    ScopedSpan outer("salvage.cycle.demo");
    ScopedSpan inner("salvage.view.demo");
  }
  tracer.SetEnabled(false);
  MetricsRegistry::Instance().counter("salvage.export.demo").Add(5);

  TraceSnapshot original = observability::Snapshot();
  ASSERT_GE(original.spans.size(), 80u);
  std::string healthy = observability::SnapshotToDatastream(original);

  int recovered = 0;
  int with_spans = 0;
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    FaultInjector injector(FaultPlan::FromSeed(seed, healthy.size(), 3));
    std::string damaged = injector.Corrupt(healthy);
    SalvageReport report;
    std::string repaired = DataStreamSalvager().Salvage(damaged, &report);

    // Whatever the damage, the salvaged stream must re-read cleanly.
    {
      DataStreamReader reader{repaired};
      for (DataStreamReader::Token token = reader.Next();
           token.kind != DataStreamReader::Token::Kind::kEof; token = reader.Next()) {
      }
      EXPECT_TRUE(reader.diagnostics().empty()) << "seed " << seed;
    }

    // A trace whose body was quarantined may fail to reconstruct — that is
    // graceful degradation, not a crash.  When it does reconstruct, the
    // Perfetto export of the recovered snapshot must still be valid JSON.
    TraceSnapshot back;
    Status status = observability::SnapshotFromDatastream(repaired, &back);
    if (!status.ok()) {
      continue;
    }
    ++recovered;
    if (back.spans.empty()) {
      continue;
    }
    ++with_spans;
    std::string json = observability::TraceExport::ToPerfettoJson(back);
    JsonValue root;
    ASSERT_TRUE(ParseJson(json, &root)) << "seed " << seed;
    const JsonValue* events = root.Get("traceEvents");
    ASSERT_NE(events, nullptr) << "seed " << seed;
    EXPECT_GE(events->items.size(), back.spans.size()) << "seed " << seed;
  }
  EXPECT_GE(recovered, 1) << "no seed produced a reconstructable trace";
  EXPECT_GE(with_spans, 1) << "no seed preserved any span through the damage";

  tracer.SetCapacity(Tracer::kDefaultCapacity);
  tracer.Clear();
}

// A host giving every child a slot (mirrors the bench_update workload).
class GridHost : public View {
 public:
  void Layout() override {
    if (graphic() == nullptr || children().empty()) {
      return;
    }
    Rect b = graphic()->LocalBounds();
    int n = static_cast<int>(children().size());
    int cw = std::max(8, b.width / n);
    for (int i = 0; i < n; ++i) {
      children()[static_cast<size_t>(i)]->Allocate(Rect{i * cw, 0, cw, b.height}, graphic());
    }
  }
};

TEST(Observability, CoalescedUpdatePassTrace) {
  RegisterStandardModules();
  Loader::Instance().Require("text");
  Loader::Instance().Require("table");

  MetricsRegistry& registry = MetricsRegistry::Instance();
  registry.ResetAll();
  Tracer& tracer = Tracer::Instance();
  tracer.Clear();
  tracer.SetEnabled(true);

  // The §2 auxiliary-object chain: table -> ChartData -> two chart views.
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, 400, 200, "charts");
  TableData table;
  table.Resize(6, 2);
  for (int r = 0; r < 6; ++r) {
    table.SetText(r, 0, "row" + std::to_string(r));
    table.SetNumber(r, 1, r * 10 + 5);
  }
  ChartData chart;
  chart.SetSource(&table);
  GridHost host;
  PieChartView pie;
  BarChartView bar;
  pie.SetDataObject(&chart);
  bar.SetDataObject(&chart);
  host.AddChild(&pie);
  host.AddChild(&bar);
  im->SetChild(&host);
  im->RunOnce();
  // Several scattered edits, one coalesced cycle.
  table.SetNumber(2, 1, 99);
  table.SetNumber(4, 1, 7);
  im->RunOnce();
  tracer.SetEnabled(false);

  std::vector<SpanRecord> spans = tracer.Collect();
  int cycles = 0;
  int view_updates = 0;
  std::vector<std::string> cycle_children;
  for (const SpanRecord& span : spans) {
    if (span.name_view() == "im.update.cycle") {
      ++cycles;
      EXPECT_EQ(span.depth, 0);
    } else if (span.name_view().substr(0, 7) == "update.") {
      ++view_updates;
      EXPECT_GE(span.depth, 1) << "per-view spans nest inside the cycle span";
      cycle_children.emplace_back(span.name_view());
    }
  }
  EXPECT_GE(cycles, 1) << "at least one coalesced update pass";
  EXPECT_GE(view_updates, 2) << "both chart views updated inside the pass";
  EXPECT_NE(std::find(cycle_children.begin(), cycle_children.end(), "update.piechartview"),
            cycle_children.end());
  EXPECT_NE(std::find(cycle_children.begin(), cycle_children.end(), "update.barchartview"),
            cycle_children.end());

  TraceSnapshot snap = observability::Snapshot();
  auto counter = [&snap](std::string_view name) -> uint64_t {
    for (const auto& sample : snap.counters) {
      if (sample.name == name) {
        return sample.value;
      }
    }
    return 0;
  };
  EXPECT_GE(counter("im.update.run"), 1u);
  EXPECT_GE(counter("im.view.updated"), 2u);
  EXPECT_GE(counter("view.update.posted"), 1u);
  // Coalescing can only merge damage: rects processed never exceed posts.
  EXPECT_LE(counter("im.damage.coalesced"), counter("im.damage.posted"));

  pie.SetDataObject(nullptr);
  bar.SetDataObject(nullptr);
}

TEST(Observability, MetricNamingConvention) {
  // Every registered metric follows `layer.noun.verb`: exactly three
  // non-empty lower-case [a-z0-9_] segments joined by dots.  Per-instance
  // segments (server.endpoint_<id>.*) keep the shape: the id folds into the
  // middle segment.
  auto well_formed = [](const std::string& name) {
    int segments = 1;
    size_t run = 0;
    for (char c : name) {
      if (c == '.') {
        if (run == 0) {
          return false;
        }
        ++segments;
        run = 0;
      } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_') {
        ++run;
      } else {
        return false;
      }
    }
    return run > 0 && segments == 3;
  };
  // Time-valued metrics use one canonical wall-clock unit: microseconds
  // (`_us`, like class.module.load_us and server.propagation.latency_us).
  // A `_ns` or `_ms` suffix is a unit mixup waiting for a dashboard —
  // reject it.  Simulated-clock durations stay in `_ticks`.
  auto unit_consistent = [](const std::string& name) {
    auto ends_with = [&name](std::string_view suffix) {
      return name.size() >= suffix.size() &&
             std::string_view(name).substr(name.size() - suffix.size()) == suffix;
    };
    return !ends_with("_ns") && !ends_with("_ms");
  };
  // Byte-valued metrics use exactly one unit and one spelling: a `_bytes`
  // suffix (PR 9's memory accounts set the shape: text.mem.gapbuffer_bytes,
  // obs.mem.total_bytes).  Scaled units (`_kb`, `_mb`, ...) and vague
  // suffixes (`_mem`) are rejected outright, and any name that talks about
  // bytes or lives in a `.mem.` namespace must end with `_bytes` — a bare
  // `.bytes` segment (the pre-PR-9 datastream.reader.bytes) hides the unit
  // from the suffix rule that every dashboard keys on.
  auto byte_unit_consistent = [](const std::string& name) {
    auto ends_with = [&name](std::string_view suffix) {
      return name.size() >= suffix.size() &&
             std::string_view(name).substr(name.size() - suffix.size()) == suffix;
    };
    if (ends_with("_kb") || ends_with("_mb") || ends_with("_gb") ||
        ends_with("_kib") || ends_with("_mib") || ends_with("_mem")) {
      return false;
    }
    bool byte_valued = name.find("bytes") != std::string::npos ||
                       name.find(".mem.") != std::string::npos;
    return !byte_valued || ends_with("_bytes");
  };
  // The rule itself must reject the shapes it was written against.
  EXPECT_FALSE(byte_unit_consistent("text.mem.gapbuffer_kb"));
  EXPECT_FALSE(byte_unit_consistent("text.gapbuffer.storage_mem"));
  EXPECT_FALSE(byte_unit_consistent("datastream.reader.bytes"));
  EXPECT_FALSE(byte_unit_consistent("salvage.bytes.quarantined"));
  EXPECT_FALSE(byte_unit_consistent("text.mem.gapbuffer"));
  EXPECT_TRUE(byte_unit_consistent("text.mem.gapbuffer_bytes"));
  EXPECT_TRUE(byte_unit_consistent("datastream.reader.ingested_bytes"));
  TraceSnapshot snap = observability::Snapshot();
  EXPECT_FALSE(snap.counters.empty());
  for (const auto& sample : snap.counters) {
    EXPECT_TRUE(well_formed(sample.name)) << "counter: " << sample.name;
    EXPECT_TRUE(unit_consistent(sample.name)) << "counter: " << sample.name;
    EXPECT_TRUE(byte_unit_consistent(sample.name)) << "counter: " << sample.name;
  }
  for (const auto& sample : snap.gauges) {
    EXPECT_TRUE(well_formed(sample.name)) << "gauge: " << sample.name;
    EXPECT_TRUE(unit_consistent(sample.name)) << "gauge: " << sample.name;
    EXPECT_TRUE(byte_unit_consistent(sample.name)) << "gauge: " << sample.name;
  }
  for (const auto& sample : snap.histograms) {
    EXPECT_TRUE(well_formed(sample.name)) << "histogram: " << sample.name;
    EXPECT_TRUE(unit_consistent(sample.name)) << "histogram: " << sample.name;
    EXPECT_TRUE(byte_unit_consistent(sample.name)) << "histogram: " << sample.name;
  }
}

TEST(Observability, ToTextRendersEverySection) {
  Tracer& tracer = Tracer::Instance();
  tracer.Clear();
  tracer.SetEnabled(true);
  { ScopedSpan span("totext.span.demo"); }
  tracer.SetEnabled(false);
  MetricsRegistry::Instance().counter("totext.counter.demo").Add(3);
  std::string text = observability::ToText(observability::Snapshot());
  EXPECT_NE(text.find("totext.span.demo"), std::string::npos);
  EXPECT_NE(text.find("totext.counter.demo"), std::string::npos);
  EXPECT_NE(text.find("spans"), std::string::npos);
}

}  // namespace
}  // namespace atk
